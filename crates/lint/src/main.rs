//! The `iris-lint` binary: lint the workspace, print `file:line:rule`
//! diagnostics, optionally write the JSON report, and exit nonzero on
//! any finding.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
iris-lint — machine-check the workspace determinism, safety, and panic-path laws

USAGE:
    iris-lint --workspace [--root PATH] [--json FILE]

OPTIONS:
    --workspace     lint every Rust source in the workspace (default)
    --root PATH     workspace root (default: discovered upward from cwd)
    --json FILE     also write the machine-readable report to FILE

EXIT CODE: 0 clean, 1 findings, 2 usage or I/O error.

Rules (see ANALYSIS.md): no-ambient-nondeterminism, rng-law,
no-unordered-merge, unsafe-audit, panic-path-audit, slot-reset-law.
Waive a single line with `// lint:allow(<rule>) -- <reason>`.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => {}
            "--root" | "--json" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{} needs a value\n\n{USAGE}", args[i]);
                    return ExitCode::from(2);
                };
                if args[i] == "--root" {
                    root = Some(PathBuf::from(value));
                } else {
                    json_out = Some(PathBuf::from(value));
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match iris_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match iris_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("iris-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    // Write the JSON artifact before deciding the exit code, so CI
    // still captures the report of a failing run.
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("iris-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.render_text());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
