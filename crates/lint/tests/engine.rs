//! End-to-end tests for the lint engine: every rule against its
//! positive and negative fixture, the PR-5 regression fixture, and the
//! live workspace (which must satisfy its own laws).

use iris_lint::rules::ALLOW_RULE_ID;
use iris_lint::{lint_source, lint_source_scoped, lint_workspace, Diagnostic, Rule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules_hit(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

/// Lint `name` under exactly `rule`, as the fixture harness does.
fn lint_fixture(name: &str, rule: Rule) -> Vec<Diagnostic> {
    lint_source(name, &fixture(name), &[rule])
}

#[test]
fn ambient_nondeterminism_fixtures() {
    let bad = lint_fixture("ambient_bad.rs", Rule::AmbientNondeterminism);
    assert!(
        bad.len() >= 3,
        "Instant::now, SystemTime::now and thread_rng must all be flagged: {bad:?}"
    );
    assert!(rules_hit(&bad)
        .iter()
        .all(|r| *r == "no-ambient-nondeterminism"));

    // The negative fixture mentions Instant::now in a comment and a
    // string literal; neither is code, so neither may be flagged.
    let good = lint_fixture("ambient_good.rs", Rule::AmbientNondeterminism);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn rng_law_fixtures() {
    let bad = lint_fixture("rng_bad.rs", Rule::RngLaw);
    assert!(
        bad.len() >= 2,
        "seed_from_u64 and from_rng must both be flagged: {bad:?}"
    );
    assert!(rules_hit(&bad).iter().all(|r| *r == "rng-law"));

    let good = lint_fixture("rng_good.rs", Rule::RngLaw);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn unordered_merge_fixtures() {
    let bad = lint_fixture("merge_bad.rs", Rule::UnorderedMerge);
    assert!(bad.iter().any(|d| d.message.contains("HashMap")), "{bad:?}");
    assert!(bad.iter().any(|d| d.message.contains("HashSet")), "{bad:?}");

    let good = lint_fixture("merge_good.rs", Rule::UnorderedMerge);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn unsafe_audit_fixtures() {
    let bad = lint_fixture("unsafe_bad.rs", Rule::UnsafeAudit);
    assert_eq!(rules_hit(&bad), ["unsafe-audit"], "{bad:?}");

    let good = lint_fixture("unsafe_good.rs", Rule::UnsafeAudit);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn panic_path_fixtures() {
    let bad = lint_fixture("panic_bad.rs", Rule::PanicPath);
    // The unannotated .unwrap() and the slice index must be flagged…
    assert!(
        bad.iter()
            .any(|d| d.rule == "panic-path-audit" && d.message.contains("unwrap")),
        "{bad:?}"
    );
    assert!(
        bad.iter()
            .any(|d| d.rule == "panic-path-audit" && d.message.contains("index")),
        "{bad:?}"
    );
    // …and both broken annotations (reason-less, unused) are findings
    // in their own right.
    assert!(
        bad.iter()
            .any(|d| d.rule == ALLOW_RULE_ID && d.message.contains("reason")),
        "{bad:?}"
    );
    assert!(
        bad.iter()
            .any(|d| d.rule == ALLOW_RULE_ID && d.message.contains("unused")),
        "{bad:?}"
    );

    let good = lint_fixture("panic_good.rs", Rule::PanicPath);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn pr5_regression_fixture_is_flagged() {
    // Linted as if it were guided.rs — the file whose PR-5 incarnation
    // carried this exact bug class. The scoped rule set must catch
    // both halves: the crash-only reset and the rogue per-worker RNG.
    let src = fixture("pr5_regression.rs");
    let diags = lint_source_scoped("crates/fuzzer/src/guided.rs", &src);
    let rules = rules_hit(&diags);
    assert!(
        rules.contains(&"slot-reset-law"),
        "the conditional reset must be flagged: {diags:?}"
    );
    assert!(
        rules.contains(&"rng-law"),
        "the rogue RNG must be flagged: {diags:?}"
    );
    assert!(diags.len() >= 2, "{diags:?}");
}

#[test]
fn fixtures_are_inert_outside_their_rule_scope() {
    // The PR-5 fixture placed outside the reset/RNG scope draws no
    // findings: scoping is part of the engine's contract, not a
    // side effect of file layout.
    let src = fixture("pr5_regression.rs");
    let diags = lint_source_scoped("crates/hv/src/vmexit.rs", &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn dist_scope_carries_merge_and_panic_rules() {
    // The distributed coordinator's fold and lease modules are inside
    // both the ordered-merge and panic-path scopes: a hash-container
    // fold and remote-input panics must both be flagged there…
    let bad = fixture("dist_fold_bad.rs");
    let diags = lint_source_scoped("crates/dist/src/coordinator.rs", &bad);
    let rules = rules_hit(&diags);
    assert!(
        rules.contains(&"no-unordered-merge"),
        "HashMap fold in the coordinator must be flagged: {diags:?}"
    );
    assert!(
        rules.contains(&"panic-path-audit"),
        "panicking access to remote-controlled state must be flagged: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "panic-path-audit" && d.message.contains("unwrap")),
        "{diags:?}"
    );

    // …and the ordered, fallible rewrite is clean under the same path.
    let good = fixture("dist_fold_good.rs");
    let diags = lint_source_scoped("crates/dist/src/lease.rs", &good);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn dist_worker_and_chaos_scope_carries_merge_and_panic_rules() {
    // PR 9 pulled the worker loop, submission client, and chaos relay
    // into both scopes: hostile bytes reach all three straight off the
    // network, so unordered folds and panicking access must be flagged
    // under each of the newly scoped paths…
    let bad = fixture("dist_chaos_bad.rs");
    for path in [
        "crates/dist/src/worker.rs",
        "crates/dist/src/client.rs",
        "crates/dist/src/chaos.rs",
    ] {
        let diags = lint_source_scoped(path, &bad);
        let rules = rules_hit(&diags);
        assert!(
            rules.contains(&"no-unordered-merge"),
            "HashMap tally under {path} must be flagged: {diags:?}"
        );
        assert!(
            rules.contains(&"panic-path-audit"),
            "panicking access to wire-controlled bytes under {path} must be flagged: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "panic-path-audit" && d.message.contains("unwrap")),
            "{diags:?}"
        );
    }

    // …and the ordered, fallible rewrite is clean under the same paths.
    let good = fixture("dist_chaos_good.rs");
    for path in [
        "crates/dist/src/worker.rs",
        "crates/dist/src/client.rs",
        "crates/dist/src/chaos.rs",
    ] {
        let diags = lint_source_scoped(path, &good);
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
}

#[test]
fn forest_scope_carries_merge_and_panic_rules() {
    // PR 10 pulled the snapshot forest and the page-level dirty tracker
    // into both scopes: map iteration there reaches restored bytes, and
    // an index panic poisons every mutant that reuses the node. Both
    // halves must be flagged under each newly scoped path…
    let bad = fixture("forest_bad.rs");
    for path in ["crates/core/src/forest.rs", "crates/hv/src/mm.rs"] {
        let diags = lint_source_scoped(path, &bad);
        let rules = rules_hit(&diags);
        assert!(
            rules.contains(&"no-unordered-merge"),
            "HashMap delta fold under {path} must be flagged: {diags:?}"
        );
        assert!(
            rules.contains(&"panic-path-audit"),
            "panicking node/page access under {path} must be flagged: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "panic-path-audit" && d.message.contains("unwrap")),
            "{diags:?}"
        );
    }

    // …and the ordered, fallible rewrite is clean under the same paths.
    let good = fixture("forest_good.rs");
    for path in ["crates/core/src/forest.rs", "crates/hv/src/mm.rs"] {
        let diags = lint_source_scoped(path, &good);
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
}

#[test]
fn forest_fixture_is_inert_outside_the_forest_scope() {
    // The same source under an unscoped hv path draws no merge or
    // panic findings — the forest coverage is scoping, not a global
    // tightening.
    let bad = fixture("forest_bad.rs");
    let diags = lint_source_scoped("crates/hv/src/vmexit.rs", &bad);
    assert!(
        !rules_hit(&diags)
            .iter()
            .any(|r| *r == "no-unordered-merge" || *r == "panic-path-audit"),
        "{diags:?}"
    );
}

#[test]
fn dist_fixture_is_inert_outside_the_dist_scope() {
    // The same source under a path outside both scopes draws no merge
    // or panic findings — the dist coverage is scoping, not a global
    // tightening.
    let bad = fixture("dist_fold_bad.rs");
    let diags = lint_source_scoped("crates/dist/src/proto.rs", &bad);
    assert!(
        !rules_hit(&diags)
            .iter()
            .any(|r| *r == "no-unordered-merge" || *r == "panic-path-audit"),
        "{diags:?}"
    );

    // Same contract for the PR-9 relay fixture: the worker/client/chaos
    // coverage is scoping, not a global tightening.
    let bad = fixture("dist_chaos_bad.rs");
    let diags = lint_source_scoped("crates/dist/src/proto.rs", &bad);
    assert!(
        !rules_hit(&diags)
            .iter()
            .any(|r| *r == "no-unordered-merge" || *r == "panic-path-audit"),
        "{diags:?}"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the root")
        .to_path_buf()
}

#[test]
fn live_workspace_satisfies_its_own_laws() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the shipped tree must lint clean:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
}

#[test]
fn json_report_is_well_formed() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    let json = report.render_json();
    // The vendored serde_json parser is the consumer-side check that
    // the hand-rolled emitter produces valid JSON.
    let value: serde::value::Value = serde_json::from_str(&json).expect("report JSON parses");
    let text = serde_json::to_string(&value).unwrap();
    assert!(text.contains("\"files_scanned\""), "{text}");
    assert!(text.contains("\"summary\""), "{text}");
}
