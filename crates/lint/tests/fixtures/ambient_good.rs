//! Negative fixture for `no-ambient-nondeterminism`: time and
//! randomness derived from recorded inputs only. The string literal
//! and comment below mention Instant::now to prove the scanner only
//! looks at code.

pub fn stamp_report(report: &mut Report, trace: &RecordedTrace) {
    // Wall time comes from the trace, never from Instant::now().
    report.wall_ms = trace.wall_time_ms();
    report.note = "no Instant::now here, honest";
}

pub fn derived_entropy(seed: u64, index: u64) -> u64 {
    seed ^ index
}
