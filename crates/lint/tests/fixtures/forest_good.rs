//! Negative fixture for the snapshot-forest lint scope: the same
//! collapse and restore logic written lawfully — ordered containers
//! where iteration reaches restored bytes, fallible access where the
//! id came from a caller.

use std::collections::BTreeMap;

pub fn collapse_into_children(victim: &Node, children: &mut [Node]) {
    // BTreeMap iteration is gfn order: every run applies overlapping
    // deltas identically.
    let mut pages: BTreeMap<u64, PageDelta> = BTreeMap::new();
    for (gfn, delta) in &victim.pages {
        pages.insert(*gfn, delta.clone());
    }
    for child in children {
        for (gfn, delta) in &pages {
            child.pages.entry(*gfn).or_insert_with(|| delta.clone());
        }
    }
}

pub fn restore_to(forest: &Forest, id: usize, ram: &mut [u8]) -> Option<()> {
    // An evicted or foreign id is a recoverable miss, not a panic: the
    // caller falls back to replaying from the root.
    let node = forest.nodes.get(id)?;
    for gfn in node.dirty() {
        let image = node.page_image(gfn)?;
        if let Some(slot) = ram.get_mut(gfn as usize) {
            *slot = image;
        }
    }
    Some(())
}
