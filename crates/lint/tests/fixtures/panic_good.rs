//! Negative fixture for `panic-path-audit`: fallible access where
//! possible, and a reasoned waiver where the panic is deliberate.

pub fn claim_next(items: &[Job], cursor: &Mutex<usize>) -> Option<Job> {
    // lint:allow(panic-path-audit) -- the lock guards a bare counter; no user code runs under it, so it cannot be poisoned
    let mut at = cursor.lock().unwrap();
    let job = items.get(*at).copied()?;
    *at += 1;
    Some(job)
}

pub fn finish(outcome: Option<Outcome>) -> Outcome {
    // lint:allow(panic-path-audit) -- the executor joins every worker before calling finish, so the outcome is always present
    outcome.expect("finish called after completion")
}
