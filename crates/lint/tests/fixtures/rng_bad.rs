//! Positive fixture for `rng-law`: RNG construction outside
//! `mutation::mutant_rng`.

pub fn run_range(range: &MutantRange) -> RangeOutput {
    let mut rng = SmallRng::seed_from_u64(range.start);
    let mut out = RangeOutput::default();
    for _ in 0..range.len {
        out.fold(rng.gen());
    }
    out
}

pub fn clone_stream(parent: &mut SmallRng) -> SmallRng {
    SmallRng::from_rng(parent)
}
