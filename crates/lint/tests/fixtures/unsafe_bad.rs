//! Positive fixture for `unsafe-audit`: an `unsafe` block with no
//! `SAFETY:` comment anywhere near it.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
