//! The PR-5 bug class, distilled: a slot runner that (a) resets its
//! target only on crash, making slot outcomes depend on which worker
//! ran the previous slot, and (b) seeds a rogue per-worker RNG instead
//! of going through `mutation::mutant_rng`. This exact shape shipped
//! in PR 5 and survived until a proptest tripped at budget ≳5000;
//! iris-lint must flag both halves.

pub fn run_slot(target: &mut Target, scheduled: &Scheduled, worker_id: u64) -> SlotOutcome {
    let mut rng = SmallRng::seed_from_u64(worker_id);
    let mutant = perturb(&scheduled.mutant, rng.gen());
    let out = target.submit(&mutant);
    let crash = out.crash;
    if crash.is_some() {
        target.reset();
    }
    SlotOutcome {
        base_index: scheduled.base_index,
        crash,
        coverage: out.coverage,
    }
}
