//! Positive fixture for the snapshot-forest lint scope: an eviction
//! that folds a victim node's page deltas through a hash container
//! (iteration order leaks into the restored bytes) and a restore path
//! that trusts node/page ids with panicking access.

use std::collections::HashMap;

pub fn collapse_into_children(victim: &Node, children: &mut [Node]) {
    // The victim's deltas land under each child — but a HashMap walk
    // applies them in hash order, so two runs can disagree about which
    // page image survives an overlap.
    let mut pages: HashMap<u64, PageDelta> = HashMap::new();
    for (gfn, delta) in &victim.pages {
        pages.insert(*gfn, delta.clone());
    }
    for child in children {
        for (gfn, delta) in pages.iter() {
            child.pages.entry(*gfn).or_insert_with(|| delta.clone());
        }
    }
}

pub fn restore_to(forest: &Forest, id: usize, ram: &mut [u8]) {
    // Callers hand in a pinned StateId; indexing straight into the node
    // table panics the worker on an evicted id instead of reporting the
    // miss, and the unwrap on the page image does the same.
    let node = forest.nodes[id];
    for gfn in node.dirty() {
        let image = node.page_image(gfn).unwrap();
        ram[gfn as usize] = image;
    }
}
