//! Negative fixture for the extended `crates/dist` lint scope
//! (worker / client / chaos relay): tallies are parked in an ordered
//! container, and every byte the peer controls is handled fallibly —
//! a hostile frame costs the connection, never the thread.

use std::collections::BTreeMap;

pub fn summarize_relays(tallies: &[(u64, RelayTally)]) -> Result<Summary, RelayError> {
    let mut parked: BTreeMap<u64, RelayTally> = BTreeMap::new();
    for (conn, tally) in tallies {
        parked.insert(*conn, tally.clone());
    }
    let mut summary = Summary::default();
    for (_, tally) in parked.iter() {
        summary.fold(tally);
    }
    Ok(summary)
}

pub fn split_header(buf: &[u8], len_from_wire: usize) -> Result<(Vec<u8>, Vec<u8>), RelayError> {
    if len_from_wire > buf.len() {
        return Err(RelayError::BadLength);
    }
    let (head, rest) = buf.split_at(len_from_wire);
    Ok((head.to_vec(), rest.to_vec()))
}

pub fn decode_lease(frame: &[u8]) -> Result<Lease, RelayError> {
    let parsed = parse_frame(frame).map_err(|_| RelayError::BadFrame)?;
    Ok(Lease::from(parsed))
}
