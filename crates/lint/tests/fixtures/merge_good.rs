//! Negative fixture for `no-unordered-merge`: ordered containers keep
//! the fold independent of partition and schedule.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn fold_outputs(outputs: &[ChunkOutput]) -> BTreeMap<Workload, Summary> {
    let mut merged: BTreeMap<Workload, Summary> = BTreeMap::new();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for out in outputs {
        if seen.insert(out.signature) {
            merged.entry(out.workload).or_default().fold(out);
        }
    }
    merged
}
