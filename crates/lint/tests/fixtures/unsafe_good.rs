//! Negative fixture for `unsafe-audit`: the block is justified by a
//! `SAFETY:` comment on the preceding line.

pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points into the live mapping
    // established at boot; it is never null or dangling.
    unsafe { *p }
}
