//! Negative fixture for `rng-law`: randomness obtained through the
//! blessed constructor only.

use crate::mutation::mutant_rng;

pub fn run_range(seed: u64, range: &MutantRange) -> RangeOutput {
    let mut out = RangeOutput::default();
    for i in range.start..range.start + range.len {
        let mut rng = mutant_rng(seed, i);
        out.fold(rng.gen());
    }
    out
}
