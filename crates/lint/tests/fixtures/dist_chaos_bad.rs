//! Positive fixture for the extended `crates/dist` lint scope
//! (worker / client / chaos relay): a relay loop that parks per-
//! connection tallies in a hash container (iteration order leaks the
//! accept schedule into the summary) and panics on bytes an adversary
//! controls instead of surfacing typed errors.

use std::collections::HashMap;

pub fn summarize_relays(tallies: &[(u64, RelayTally)]) -> Summary {
    let mut parked: HashMap<u64, RelayTally> = HashMap::new();
    for (conn, tally) in tallies {
        parked.insert(*conn, tally.clone());
    }
    let mut summary = Summary::default();
    for (_, tally) in parked.iter() {
        summary.fold(tally);
    }
    summary
}

pub fn split_header(buf: &[u8], len_from_wire: usize) -> (Vec<u8>, Vec<u8>) {
    // The peer chose `len_from_wire`; slicing panics the relay thread
    // on a hostile length instead of killing just the connection.
    let head = buf[..len_from_wire].to_vec();
    let rest = buf[len_from_wire..].to_vec();
    (head, rest)
}

pub fn decode_lease(frame: &[u8]) -> Lease {
    let parsed = parse_frame(frame).unwrap();
    Lease::from(parsed)
}
