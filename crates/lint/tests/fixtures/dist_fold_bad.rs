//! Positive fixture for the `crates/dist` lint scope: a coordinator
//! fold that parks worker results in a hash container (iteration order
//! leaks schedule into the report) and trusts remote input with
//! panicking access paths.

use std::collections::HashMap;

pub fn fold_worker_results(results: &[(usize, ChunkOutput)]) -> Report {
    let mut parked: HashMap<usize, ChunkOutput> = HashMap::new();
    for (index, output) in results {
        parked.insert(*index, output.clone());
    }
    let mut report = Report::default();
    for (_, output) in parked.iter() {
        report.fold(output);
    }
    report
}

pub fn lease_for(table: &[SlotState], index: usize) -> SlotState {
    // Remote workers choose `index`; indexing panics the daemon on a
    // malformed frame instead of returning a protocol error.
    let slot = table[index];
    let deadline = slot.deadline().unwrap();
    SlotState::leased(deadline)
}
