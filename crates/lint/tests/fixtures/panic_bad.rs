//! Positive fixture for `panic-path-audit`: unwaived panic paths in
//! executor-scope code, plus two broken allowlist annotations.

pub fn claim_next(items: &[Job], cursor: &Mutex<usize>) -> Job {
    let mut at = cursor.lock().unwrap();
    let job = items[*at];
    *at += 1;
    job
}

pub fn finish(outcome: Option<Outcome>) -> Outcome {
    // lint:allow(panic-path-audit)
    outcome.expect("finish called after completion")
}

// lint:allow(rng-law) -- this allow matches nothing and must be reported as unused
pub fn quiet() {}
