//! Positive fixture for `no-ambient-nondeterminism`: wall clocks and
//! OS entropy inside the deterministic core.

pub fn stamp_report(report: &mut Report) {
    let t0 = std::time::Instant::now();
    report.wall = t0.elapsed();
    report.stamp = std::time::SystemTime::now();
}

pub fn rogue_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
