//! Negative fixture for the `crates/dist` lint scope: out-of-order
//! worker results are parked in an ordered container and drained as a
//! contiguous prefix, and remote-controlled access is fallible.

use std::collections::BTreeMap;

pub fn fold_worker_results(results: &[(usize, ChunkOutput)]) -> Result<Report, FoldError> {
    let mut parked: BTreeMap<usize, ChunkOutput> = BTreeMap::new();
    for (index, output) in results {
        parked.insert(*index, output.clone());
    }
    let mut report = Report::default();
    for (_, output) in parked.iter() {
        report.fold(output);
    }
    Ok(report)
}

pub fn lease_for(table: &[SlotState], index: usize) -> Result<SlotState, FoldError> {
    let slot = table.get(index).ok_or(FoldError::BadIndex)?;
    let deadline = slot.deadline().ok_or(FoldError::NoDeadline)?;
    Ok(SlotState::leased(deadline))
}
