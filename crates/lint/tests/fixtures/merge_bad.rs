//! Positive fixture for `no-unordered-merge`: hash containers in an
//! aggregation module, where iteration order leaks into the report.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn fold_outputs(outputs: &[ChunkOutput]) -> HashMap<Workload, Summary> {
    let mut merged: HashMap<Workload, Summary> = HashMap::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for out in outputs {
        if seen.insert(out.signature) {
            merged.entry(out.workload).or_default().fold(out);
        }
    }
    merged
}
