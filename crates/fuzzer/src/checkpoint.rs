//! Durable checkpoint/resume for campaigns and guided runs.
//!
//! Long runs die: workers panic, hosts get preempted, operators hit
//! Ctrl-C, and a fleet-scale sweep cannot afford to restart from
//! zero. This module makes progress **durable** at the two natural
//! synchronization points the engines already have:
//!
//! * a campaign checkpoints at **test-case fold boundaries** — the
//!   aggregator folds completed test cases into the report in plan
//!   order, so "the first `folded` results plus the report they built"
//!   is a complete, self-contained prefix of the run;
//! * a guided shared-corpus run checkpoints at **generation barriers**
//!   — the barrier merge leaves the engine in its canonical
//!   deterministic state (coverage map, promotions, crash corpus,
//!   growth curve, next slot), and every value a future generation
//!   depends on is in the snapshot.
//!
//! Because both engines are deterministic given their config (the
//! per-index RNG law for campaigns, the slot law for guided runs), a
//! run resumed from a checkpoint finishes with a report
//! **byte-identical** to the uninterrupted run's — a `kill -9` costs
//! at most the work since the last barrier/fold. The conformance suite
//! pins that equality; RELIABILITY.md documents the rules.
//!
//! Checkpoints are versioned JSON, written **atomically** through
//! [`atomic_write_json`] (a `.tmp` sibling + `rename`, the pattern
//! factored out of [`Corpus::save`]) — a crash mid-write can never
//! truncate the previous checkpoint. Each checkpoint embeds a
//! **fingerprint** of the run configuration (target, workload, seeds,
//! budgets — everything the result depends on, deliberately excluding
//! `jobs`/`chunk`, which the determinism laws make irrelevant);
//! loading validates both the format version and the fingerprint, so
//! a checkpoint can only resume the run it belongs to.
//!
//! The [`JsonWriter`] at the bottom is the background persistence
//! loop shared with [`crate::corpus::CorpusWriter`]: snapshots are
//! enqueued without blocking the engine, coalesced (newest wins), and
//! every I/O error is collected and surfaced joined at the end.

use crate::corpus::Corpus;
use crate::failure::FailureStats;
use crate::guided::GuidedConfig;
use crate::parallel::CampaignReport;
use iris_core::seed::VmSeed;
use iris_hv::coverage::CoverageMap;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Checkpoint format version. Bump on any layout change; loaders
/// reject other versions instead of guessing. (v2: guided checkpoints
/// carry the promotion lineage, from which the snapshot-forest seed
/// paths are rebuilt on resume.)
pub const CHECKPOINT_VERSION: u32 = 2;

/// Wrap an I/O error with the operation and path it happened on, keeping
/// the original [`io::ErrorKind`] so callers can still match on it.
pub(crate) fn annotate(e: io::Error, what: &str, path: &Path) -> io::Error {
    io::Error::new(e.kind(), format!("{what} {}: {e}", path.display()))
}

/// Write `json` to `path` **atomically**: the bytes go to a `.tmp`
/// sibling first and are `rename`d into place, so a crash mid-write can
/// never leave a torn or truncated artifact — the previous complete
/// file (if any) survives intact. Errors carry the path they happened
/// on.
///
/// This is the one write path every durable JSON artifact shares:
/// corpus snapshots ([`Corpus::save`]), checkpoints, and the CLI's
/// `--json` report emitters.
///
/// # Errors
///
/// Propagates the failed write or rename, annotated with its path; a
/// failed rename removes the orphan `.tmp` sibling before returning.
pub fn atomic_write_json(path: &Path, json: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_owned();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, json).map_err(|e| annotate(e, "writing", &tmp))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        // Don't leave the orphan sibling behind on a failed rename.
        std::fs::remove_file(&tmp).ok();
        annotate(e, "committing", path)
    })
}

/// The configuration fingerprint of a guided shared-corpus run:
/// everything the byte-identical result depends on. `jobs` is
/// deliberately absent — the shared engine's determinism law makes the
/// result worker-count-independent, so a run may resume with a
/// different worker count.
#[must_use]
pub fn guided_fingerprint(
    target: &str,
    workload: &str,
    exits: usize,
    config: &GuidedConfig,
) -> String {
    format!(
        "guided/{target}/{workload}/exits={exits}/seed={}/budget={}/gen={}/ram={}",
        config.rng_seed,
        config.budget,
        config.generation.max(1),
        config.ram_bytes
    )
}

/// The configuration fingerprint of a campaign run. `jobs` and `chunk`
/// are deliberately absent — the campaign report is byte-identical for
/// every `(jobs, chunk)` combination, so a run may resume with
/// different sharding.
#[must_use]
pub fn campaign_fingerprint(
    target: &str,
    workload: &str,
    exits: usize,
    seed: u64,
    mutants: usize,
    plan_len: usize,
) -> String {
    format!(
        "campaign/{target}/{workload}/exits={exits}/seed={seed}/mutants={mutants}/plan={plan_len}"
    )
}

fn validate(version: u32, fingerprint: &str, expected: &str, path: &Path) -> io::Result<()> {
    if version != CHECKPOINT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint {} has format version {version}; this build reads version \
                 {CHECKPOINT_VERSION}",
                path.display()
            ),
        ));
    }
    if fingerprint != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint {} belongs to a different run: its fingerprint is \
                 \"{fingerprint}\" but this invocation's is \"{expected}\"",
                path.display()
            ),
        ));
    }
    Ok(())
}

fn load_json<T: Deserialize>(path: &Path) -> io::Result<T> {
    let bytes = std::fs::read(path).map_err(|e| annotate(e, "reading checkpoint from", path))?;
    serde_json::from_slice(&bytes).map_err(|e| annotate(e.into(), "parsing checkpoint in", path))
}

fn save_json<T: Serialize>(value: &T, path: &Path) -> io::Result<()> {
    let json = serde_json::to_vec_pretty(value)
        .map_err(|e| annotate(e.into(), "serializing checkpoint for", path))?;
    atomic_write_json(path, &json)
}

/// Everything a guided shared-corpus run needs to continue from a
/// generation barrier. The scheduling corpus itself is *not* stored:
/// it is always `initial_corpus(trace) ++ promoted`, and the
/// fingerprint guarantees the resuming run records the identical
/// trace, so storing the promotions suffices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuidedCheckpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Fingerprint of the run configuration
    /// ([`guided_fingerprint`]); resume validates it.
    pub fingerprint: String,
    /// The next slot to execute — always a generation boundary (a
    /// multiple of the generation size, or the budget).
    pub next_slot: u64,
    /// Lines the initial corpus alone covered.
    pub baseline_lines: u64,
    /// The evolving coverage map at the barrier.
    pub seen: CoverageMap,
    /// Promotions so far.
    pub promotions: u64,
    /// The promoted mutants, in promotion order.
    pub promoted: Vec<VmSeed>,
    /// Promotion lineage, aligned with `promoted`: each entry is
    /// `(base_index, extended)` — the mutation base's corpus index and
    /// whether the promoted mutant ran to completion (a crashing
    /// promotion inherits its base's state path instead of extending
    /// it). Together with the rebuilt corpus this reconstructs every
    /// entry's seed path, so a resumed run positions slots (and pins
    /// forest nodes) exactly like the uninterrupted one. Note that
    /// forest *configuration* is deliberately absent from both the
    /// checkpoint and the fingerprint, like `jobs`/`chunk`: the forest
    /// is a pure accelerator, so a run may resume with it toggled.
    pub lineage: Vec<(usize, bool)>,
    /// Folded failure counters so far.
    pub failures: FailureStats,
    /// The crash corpus so far.
    pub crashes: Corpus,
    /// The growth curve so far (one point per completed generation).
    pub growth: Vec<u64>,
}

impl GuidedCheckpoint {
    /// Persist atomically as versioned JSON.
    ///
    /// # Errors
    /// Propagates serialization and [`atomic_write_json`] failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_json(self, path)
    }

    /// Load and validate: the format version must be
    /// [`CHECKPOINT_VERSION`] and the stored fingerprint must equal
    /// `expected_fingerprint`.
    ///
    /// # Errors
    /// I/O and parse failures (annotated with the path), and
    /// [`io::ErrorKind::InvalidData`] on version or fingerprint
    /// mismatch.
    pub fn load(path: &Path, expected_fingerprint: &str) -> io::Result<Self> {
        let cp: Self = load_json(path)?;
        validate(cp.version, &cp.fingerprint, expected_fingerprint, path)?;
        Ok(cp)
    }
}

/// Everything a campaign needs to continue from a test-case fold
/// boundary: the report holding the first `folded` results (folded in
/// plan order) — re-running the remaining plan suffix on top of it
/// yields the uninterrupted report byte-for-byte.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Fingerprint of the run configuration
    /// ([`campaign_fingerprint`]); resume validates it.
    pub fingerprint: String,
    /// Test cases fully folded into `report` — the plan prefix to
    /// skip on resume.
    pub folded: usize,
    /// The partial report over the folded prefix.
    pub report: CampaignReport,
}

impl CampaignCheckpoint {
    /// Persist atomically as versioned JSON.
    ///
    /// # Errors
    /// Propagates serialization and [`atomic_write_json`] failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_json(self, path)
    }

    /// Load and validate: the format version must be
    /// [`CHECKPOINT_VERSION`] and the stored fingerprint must equal
    /// `expected_fingerprint`.
    ///
    /// # Errors
    /// I/O and parse failures (annotated with the path), and
    /// [`io::ErrorKind::InvalidData`] on version or fingerprint
    /// mismatch.
    pub fn load(path: &Path, expected_fingerprint: &str) -> io::Result<Self> {
        let cp: Self = load_json(path)?;
        validate(cp.version, &cp.fingerprint, expected_fingerprint, path)?;
        Ok(cp)
    }
}

/// Join a batch of write errors into one, preserving the first error's
/// [`io::ErrorKind`]; each message already carries its path (see
/// [`annotate`]).
pub(crate) fn join_write_errors(mut errors: Vec<io::Error>) -> Option<io::Error> {
    match errors.len() {
        0 => None,
        1 => Some(errors.remove(0)),
        _ => {
            // lint:allow(panic-path-audit) -- the surrounding match arm guarantees errors.len() >= 2
            let kind = errors[0].kind();
            let joined = errors
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            Some(io::Error::new(
                kind,
                format!("{} write errors: {joined}", errors.len()),
            ))
        }
    }
}

/// Background JSON persistence: a dedicated writer thread that
/// serializes and atomically saves snapshots of any `Serialize` state
/// off the engine's aggregator thread, so long runs never pause on
/// JSON I/O. The engine behind [`crate::corpus::CorpusWriter`] and the
/// CLI's `--checkpoint` writer.
///
/// * [`JsonWriter::persist`] enqueues a snapshot and returns
///   immediately (the channel is unbounded — the caller never
///   blocks);
/// * the writer coalesces: when snapshots arrive faster than the disk
///   can absorb them, only the **newest** pending snapshot is written
///   (each snapshot is cumulative, so intermediates carry no extra
///   information);
/// * every write goes through [`atomic_write_json`] — an interrupted
///   run never leaves a torn artifact;
/// * **every** error (serialization, write, rename) is collected —
///   later snapshots are still attempted — and surfaced joined, each
///   with its path, by [`JsonWriter::finish`]; a panicking writer
///   thread surfaces as an error there too instead of re-panicking.
///
/// Dropping the writer without calling `finish` detaches the thread: it
/// still drains and writes pending snapshots, but errors are lost.
#[derive(Debug)]
pub struct JsonWriter<T> {
    tx: Option<std::sync::mpsc::Sender<T>>,
    handle: Option<std::thread::JoinHandle<(u64, Vec<io::Error>)>>,
    path: PathBuf,
}

impl<T: Serialize + Send + 'static> JsonWriter<T> {
    /// Spawn the writer thread; every snapshot is saved to `path`.
    #[must_use]
    pub fn spawn(path: PathBuf) -> Self {
        let (tx, rx) = std::sync::mpsc::channel::<T>();
        let thread_path = path.clone();
        let handle = std::thread::spawn(move || {
            let mut saves = 0u64;
            let mut errors: Vec<io::Error> = Vec::new();
            while let Ok(mut snapshot) = rx.recv() {
                // Coalesce the backlog: later snapshots supersede
                // earlier ones, so skip straight to the newest.
                while let Ok(newer) = rx.try_recv() {
                    snapshot = newer;
                }
                match serde_json::to_vec_pretty(&snapshot) {
                    Ok(json) => match atomic_write_json(&thread_path, &json) {
                        Ok(()) => saves += 1,
                        Err(e) => errors.push(e),
                    },
                    Err(e) => {
                        errors.push(annotate(e.into(), "serializing snapshot for", &thread_path));
                    }
                }
            }
            (saves, errors)
        });
        Self {
            tx: Some(tx),
            handle: Some(handle),
            path,
        }
    }

    /// Enqueue a snapshot for persistence. Non-blocking; serialization
    /// and I/O happen on the writer thread.
    pub fn persist(&self, snapshot: T) {
        if let Some(tx) = &self.tx {
            // A send can only fail if the writer thread died, and the
            // writer only exits when the channel closes — unreachable
            // while `tx` lives, so losing the snapshot here is fine.
            let _ = tx.send(snapshot);
        }
    }

    /// Close the channel, wait for every outstanding write, and surface
    /// **all** collected errors, joined (each carries its path).
    /// Returns the number of snapshots actually written (coalesced
    /// snapshots count once).
    ///
    /// # Errors
    /// The joined write/serialization errors, or an error reporting a
    /// panicked writer thread.
    pub fn finish(mut self) -> io::Result<u64> {
        drop(self.tx.take());
        let Ok((saves, errors)) = self
            .handle
            .take()
            // lint:allow(panic-path-audit) -- finish consumes self, and handle is Some from construction until here
            .expect("finish consumes the writer")
            .join()
        else {
            return Err(io::Error::other(format!(
                "background JSON writer for {} panicked",
                self.path.display()
            )));
        };
        match join_write_errors(errors) {
            None => Ok(saves),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guided_cp(fingerprint: &str) -> GuidedCheckpoint {
        GuidedCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: fingerprint.to_owned(),
            next_slot: 512,
            baseline_lines: 10,
            seen: CoverageMap::new(),
            promotions: 0,
            promoted: Vec::new(),
            lineage: Vec::new(),
            failures: FailureStats::default(),
            crashes: Corpus::new(),
            growth: vec![10, 10],
        }
    }

    #[test]
    fn atomic_write_leaves_no_tmp_and_overwrites_atomically() {
        let dir = std::env::temp_dir();
        let p = dir.join("iris-atomic-write-test.json");
        let tmp = dir.join("iris-atomic-write-test.json.tmp");
        std::fs::remove_file(&p).ok();

        atomic_write_json(&p, b"{\"a\":1}").unwrap();
        assert!(!tmp.exists(), "tmp sibling must be renamed away");
        assert_eq!(std::fs::read(&p).unwrap(), b"{\"a\":1}");
        atomic_write_json(&p, b"{\"a\":2}").unwrap();
        assert!(!tmp.exists());
        assert_eq!(std::fs::read(&p).unwrap(), b"{\"a\":2}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn atomic_write_errors_carry_the_path() {
        let unwritable = std::env::temp_dir().join("iris-no-such-dir").join("x.json");
        let err = atomic_write_json(&unwritable, b"{}").unwrap_err();
        assert!(
            err.to_string().contains("iris-no-such-dir"),
            "path context missing: {err}"
        );
    }

    #[test]
    fn guided_checkpoint_round_trips_and_validates() {
        let p = std::env::temp_dir().join("iris-guided-checkpoint-test.json");
        let fp = guided_fingerprint("iris", "os_boot", 5000, &GuidedConfig::default());
        let cp = guided_cp(&fp);
        cp.save(&p).unwrap();

        let loaded = GuidedCheckpoint::load(&p, &fp).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded).unwrap(),
            serde_json::to_string(&cp).unwrap()
        );

        // A different configuration must be rejected.
        let other = guided_fingerprint(
            "iris",
            "os_boot",
            5000,
            &GuidedConfig {
                budget: 9999,
                ..GuidedConfig::default()
            },
        );
        let err = GuidedCheckpoint::load(&p, &other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different run"), "got: {err}");

        // A future format version must be rejected.
        let future = GuidedCheckpoint {
            version: CHECKPOINT_VERSION + 1,
            ..guided_cp(&fp)
        };
        future.save(&p).unwrap();
        let err = GuidedCheckpoint::load(&p, &fp).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("format version"), "got: {err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn campaign_checkpoint_round_trips_and_validates() {
        let p = std::env::temp_dir().join("iris-campaign-checkpoint-test.json");
        let fp = campaign_fingerprint("iris", "os_boot", 5000, 42, 200, 8);
        let cp = CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: fp.clone(),
            folded: 0,
            report: CampaignReport {
                results: Vec::new(),
                coverage: CoverageMap::new(),
                failures: FailureStats::default(),
                corpus: Corpus::new(),
            },
        };
        cp.save(&p).unwrap();
        let loaded = CampaignCheckpoint::load(&p, &fp).unwrap();
        assert_eq!(loaded.folded, 0);
        assert_eq!(loaded.report, cp.report);

        let err = CampaignCheckpoint::load(
            &p,
            &campaign_fingerprint("faulty", "os_boot", 5000, 42, 200, 8),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fingerprints_separate_runs_and_ignore_sharding() {
        let cfg = GuidedConfig::default();
        let a = guided_fingerprint("iris", "os_boot", 5000, &cfg);
        assert_eq!(a, guided_fingerprint("iris", "os_boot", 5000, &cfg));
        assert_ne!(a, guided_fingerprint("faulty", "os_boot", 5000, &cfg));
        assert_ne!(a, guided_fingerprint("iris", "idle", 5000, &cfg));
        assert_ne!(
            a,
            guided_fingerprint(
                "iris",
                "os_boot",
                5000,
                &GuidedConfig { rng_seed: 7, ..cfg }
            )
        );
        // Campaign and guided checkpoints can never cross-resume.
        assert!(a.starts_with("guided/"));
        assert!(campaign_fingerprint("iris", "os_boot", 5000, 42, 200, 8).starts_with("campaign/"));
    }

    #[test]
    fn join_write_errors_reports_every_error() {
        assert!(join_write_errors(Vec::new()).is_none());
        let one = join_write_errors(vec![io::Error::new(
            io::ErrorKind::NotFound,
            "writing /a: gone",
        )])
        .unwrap();
        assert_eq!(one.kind(), io::ErrorKind::NotFound);
        let joined = join_write_errors(vec![
            io::Error::new(io::ErrorKind::PermissionDenied, "writing /a: denied"),
            io::Error::new(io::ErrorKind::NotFound, "committing /b: gone"),
        ])
        .unwrap();
        assert_eq!(
            joined.kind(),
            io::ErrorKind::PermissionDenied,
            "first error's kind wins"
        );
        let msg = joined.to_string();
        assert!(
            msg.contains("/a") && msg.contains("/b"),
            "all paths reported: {msg}"
        );
        assert!(msg.contains("2 write errors"), "count reported: {msg}");
    }

    #[test]
    fn json_writer_persists_newest_and_collects_errors() {
        let p = std::env::temp_dir().join("iris-json-writer-test.json");
        std::fs::remove_file(&p).ok();
        let writer = JsonWriter::<Vec<u32>>::spawn(p.clone());
        writer.persist(vec![1]);
        writer.persist(vec![1, 2]);
        let saves = writer.finish().unwrap();
        assert!(saves >= 1);
        let on_disk: Vec<u32> = serde_json::from_slice(&std::fs::read(&p).unwrap()).unwrap();
        assert_eq!(on_disk, vec![1, 2], "the newest snapshot wins");
        std::fs::remove_file(&p).ok();

        let unwritable = std::env::temp_dir().join("iris-no-such-dir").join("w.json");
        let writer = JsonWriter::<Vec<u32>>::spawn(unwritable);
        writer.persist(vec![9]);
        let err = writer.finish().unwrap_err();
        assert!(
            err.to_string().contains("iris-no-such-dir"),
            "path context missing: {err}"
        );
    }
}
