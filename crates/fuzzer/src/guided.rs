//! Coverage-guided fuzzing (§IX: *"We plan to experiment Intel PT in
//! IRIS to make feasible an efficient coverage-guided fuzzer"*).
//!
//! A greybox loop on top of the replay engine: a corpus of VM seeds is
//! scheduled round-robin; each scheduled seed is mutated with a rotating
//! [`Strategy`]; mutants that discover coverage the campaign has never
//! seen are promoted into the corpus (becoming future mutation bases),
//! crashes are recorded, and the loop continues for a fixed budget —
//! the classic AFL feedback cycle, with IRIS seeds as the input format
//! and the hypervisor's basic-block bitmap as the feedback channel.

use crate::failure::FailureStats;
use crate::mutation::SeedArea;
use crate::strategies::{mutate_with, Strategy};
use crate::target::{BootPlan, FuzzTarget, IrisHvTarget, TargetFactory};
use iris_core::seed::VmSeed;
use iris_core::trace::RecordedTrace;
use iris_hv::coverage::CoverageMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of a guided run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuidedResult {
    /// Mutants executed.
    pub executions: u64,
    /// Corpus size at the end (initial seeds + promoted mutants).
    pub corpus_size: usize,
    /// Mutants promoted for discovering new coverage.
    pub promotions: u64,
    /// Total unique lines discovered over the whole run.
    pub total_lines: u64,
    /// Lines the initial seeds alone covered (the baseline).
    pub baseline_lines: u64,
    /// Failure statistics.
    pub failures: FailureStats,
    /// Coverage growth: total lines after each 1/16 of the budget.
    pub growth: Vec<u64>,
}

/// Configuration for a guided run.
#[derive(Debug, Clone, Copy)]
pub struct GuidedConfig {
    /// Total mutant executions.
    pub budget: u64,
    /// RNG seed.
    pub rng_seed: u64,
    /// Dummy-VM RAM.
    pub ram_bytes: u64,
}

impl Default for GuidedConfig {
    fn default() -> Self {
        Self {
            budget: 2_000,
            rng_seed: 42,
            ram_bytes: 16 << 20,
        }
    }
}

/// Run the coverage-guided loop seeded from a recorded trace on the
/// stock backend, sized per `config.ram_bytes`.
///
/// The initial corpus is a sample of the trace's seeds (one per distinct
/// exit reason — the trace's "dictionary" of behaviours).
#[must_use]
pub fn run_guided(trace: &RecordedTrace, config: GuidedConfig) -> GuidedResult {
    run_guided_with(&IrisHvTarget::with_ram(config.ram_bytes), trace, config)
}

/// [`run_guided`] over an explicit backend factory (the factory's
/// dummy-VM sizing wins over `config.ram_bytes`).
#[must_use]
pub fn run_guided_with<F: TargetFactory>(
    factory: &F,
    trace: &RecordedTrace,
    config: GuidedConfig,
) -> GuidedResult {
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);

    // Initial corpus: first seed of each distinct reason.
    let mut corpus: Vec<VmSeed> = Vec::new();
    for seed in &trace.seeds {
        if !corpus.iter().any(|s| s.reason == seed.reason) {
            corpus.push(seed.clone());
        }
    }
    if corpus.is_empty() {
        return GuidedResult {
            executions: 0,
            corpus_size: 0,
            promotions: 0,
            total_lines: 0,
            baseline_lines: 0,
            failures: FailureStats::default(),
            growth: Vec::new(),
        };
    }

    // One long-lived target: `s1` is the post-boot snapshot, so crash
    // recovery ([`FuzzTarget::reset`]) restores it in place; only a
    // SUT-fatal crash rebuilds the stack from scratch.
    let mut target = factory.build(BootPlan::post_boot(trace));
    target.boot();

    // Baseline: run the initial corpus once.
    let mut seen = CoverageMap::new();
    for seed in &corpus {
        let out = target.submit(seed);
        seen.merge(&out.coverage);
        if out.crash.is_some() {
            target.reset();
        }
    }
    let baseline_lines = seen.lines();

    let mut failures = FailureStats::default();
    let mut promotions = 0u64;
    let mut growth = Vec::new();
    let checkpoint = (config.budget / 16).max(1);

    for i in 0..config.budget {
        let base_idx = (i % corpus.len() as u64) as usize;
        let strategy = Strategy::ALL[(i as usize / corpus.len()) % Strategy::ALL.len()];
        let area = if rng.gen_bool(0.7) {
            SeedArea::Vmcs
        } else {
            SeedArea::Gpr
        };
        let donor_idx = rng.gen_range(0..corpus.len());
        let mutant = {
            let base = &corpus[base_idx];
            let donor = &corpus[donor_idx];
            mutate_with(base, area, strategy, Some(donor), &mut rng)
        };

        let out = target.submit(&mutant);
        failures.record_kind(out.crash.as_ref().map(|v| v.kind));

        let new_lines = seen.new_lines_from(&out.coverage);
        if new_lines > 0 {
            seen.merge(&out.coverage);
            // Feedback: interesting mutants join the corpus.
            corpus.push(mutant);
            promotions += 1;
        }

        if out.crash.is_some() {
            target.reset();
        }
        if (i + 1) % checkpoint == 0 {
            growth.push(seen.lines());
        }
    }

    GuidedResult {
        executions: config.budget,
        corpus_size: corpus.len(),
        promotions,
        total_lines: seen.lines(),
        baseline_lines,
        failures,
        growth,
    }
}

/// Run an ensemble of guided campaigns, sharded over `jobs` worker
/// threads — the §IX figure reproduction at scale: many independent
/// feedback loops (one per config, typically differing in `rng_seed`)
/// instead of one, using every available core.
///
/// The feedback loop itself is inherently sequential (each promotion
/// feeds later scheduling decisions), so parallelism lives *across*
/// instances: each instance is self-contained and deterministic in its
/// config, and results come back in config order, so the returned
/// vector is identical for any `jobs` value. Ensemble arms ride the
/// same lock-free worker pool the chunked campaign executor uses
/// (`run_indexed`'s atomic cursor) — an instance is one indivisible
/// work item, so the campaign's mutant-range chunking does not apply
/// here; sub-instance parallelism needs the deterministic
/// promotion-merge protocol ROADMAP sketches.
#[must_use]
pub fn run_guided_parallel(
    trace: &RecordedTrace,
    configs: &[GuidedConfig],
    jobs: usize,
) -> Vec<GuidedResult> {
    crate::parallel::run_indexed(configs, jobs, |_, config| run_guided(trace, *config))
}

/// [`run_guided_parallel`] over an explicit backend factory, shared by
/// every worker (each instance still builds its own private target).
#[must_use]
pub fn run_guided_parallel_with<F: TargetFactory>(
    factory: &F,
    trace: &RecordedTrace,
    configs: &[GuidedConfig],
    jobs: usize,
) -> Vec<GuidedResult> {
    crate::parallel::run_indexed(configs, jobs, |_, config| {
        run_guided_with(factory, trace, *config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::record_trace;
    use iris_guest::workloads::Workload;

    fn boot_trace() -> RecordedTrace {
        record_trace(Workload::OsBoot, 250, 42)
    }

    #[test]
    fn guided_loop_discovers_and_promotes() {
        let trace = boot_trace();
        let r = run_guided(
            &trace,
            GuidedConfig {
                budget: 400,
                ..GuidedConfig::default()
            },
        );
        assert_eq!(r.executions, 400);
        assert!(r.total_lines > r.baseline_lines, "{r:?}");
        assert!(r.promotions > 0, "feedback must promote mutants");
        assert!(r.corpus_size > 5);
        // Growth curve is monotone.
        assert!(r.growth.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn guided_loop_is_deterministic() {
        let trace = boot_trace();
        let cfg = GuidedConfig {
            budget: 150,
            ..GuidedConfig::default()
        };
        let a = run_guided(&trace, cfg);
        let b = run_guided(&trace, cfg);
        assert_eq!(a.total_lines, b.total_lines);
        assert_eq!(a.promotions, b.promotions);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let r = run_guided(&RecordedTrace::new("empty"), GuidedConfig::default());
        assert_eq!(r.executions, 0);
        assert_eq!(r.corpus_size, 0);
    }

    #[test]
    fn guided_ensemble_is_worker_count_independent() {
        let trace = boot_trace();
        let configs: Vec<GuidedConfig> = (0..4)
            .map(|i| GuidedConfig {
                budget: 80,
                rng_seed: 100 + i,
                ..GuidedConfig::default()
            })
            .collect();
        let snapshot = |results: &[GuidedResult]| {
            results
                .iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect::<Vec<_>>()
        };
        let one = run_guided_parallel(&trace, &configs, 1);
        let four = run_guided_parallel(&trace, &configs, 4);
        assert_eq!(one.len(), 4);
        assert_eq!(snapshot(&one), snapshot(&four));
        // Each instance equals its standalone sequential run.
        for (cfg, r) in configs.iter().zip(&one) {
            let solo = run_guided(&trace, *cfg);
            assert_eq!(
                serde_json::to_string(&solo).unwrap(),
                serde_json::to_string(r).unwrap()
            );
        }
    }
}
