//! Coverage-guided fuzzing (§IX: *"We plan to experiment Intel PT in
//! IRIS to make feasible an efficient coverage-guided fuzzer"*).
//!
//! A greybox loop on top of the replay engine: a corpus of VM seeds is
//! scheduled round-robin; each scheduled seed is mutated with a rotating
//! [`Strategy`]; mutants that discover coverage the campaign has never
//! seen are promoted into the corpus (becoming future mutation bases),
//! crashes are recorded, and the loop continues for a fixed budget —
//! the classic AFL feedback cycle, with IRIS seeds as the input format
//! and the hypervisor's basic-block bitmap as the feedback channel.
//!
//! Three drivers share that cycle:
//!
//! * [`run_guided`] — the classic **sequential** loop: one long-lived
//!   target, one RNG threaded through the budget, promotions take
//!   effect immediately.
//! * [`run_guided_parallel`] — **ensembles**: N independent sequential
//!   instances (typically differing in `rng_seed`) sharded over the
//!   worker pool; N jobs buy N disjoint corpora.
//! * [`run_guided_shared`] — the **generational shared-corpus** engine:
//!   one corpus, N workers, deterministic results for any worker
//!   count. The budget is cut into *generations*
//!   ([`GuidedConfig::generation`] slots each). Each generation
//!   snapshots the corpus and the coverage map, expands
//!   deterministically into an indexed batch of slots — slot `g` is a
//!   pure function of `(corpus, rng_seed, g)` per the scheduling law
//!   ([`crate::strategies::scheduled_mutant`], RNG =
//!   `SmallRng(rng_seed ⊕ g)`) — and executes the batch on the shared
//!   work-stealing executor ([`crate::executor`]): every worker builds
//!   one private booted [`SlotContext`] and serves all the slots it
//!   steals on it. Each slot **positions at its mutation base's
//!   state** — `s1` plus the base's seed path ([`corpus_paths`]) — so
//!   mutation resumes from where the promoted base left off instead of
//!   rebooting to `s1`; with a snapshot forest
//!   ([`crate::target::TargetFactory::forest`]) that positioning is an
//!   O(delta) restore of the base's pinned node, without one it is a
//!   root reset plus path replay — **state-identical by the forest
//!   law**, so the forest is a pure accelerator. At the **generation
//!   barrier** the outcomes merge in slot order against the
//!   generation-start coverage map: promotions append to the corpus in
//!   slot order, crash records fold into the crash corpus in slot
//!   order, and the growth curve records one point per generation.
//!   Because the from-scratch positioning makes every slot outcome an
//!   *exact* pure function of
//!   `(corpus, paths, coverage snapshot, rng_seed, g)` — no residual
//!   target state leaks between the slots a worker serves — and the
//!   merge order is defined, the serialized [`GuidedResult`] is
//!   **byte-identical for any `jobs` count and with the forest on or
//!   off** — jobs=1 without a forest is the reference semantics. The
//!   same law is what lets a panicked worker's lost slots be
//!   re-executed byte-identically (see RELIABILITY.md).

use crate::checkpoint::{GuidedCheckpoint, CHECKPOINT_VERSION};
use crate::corpus::{Corpus, CrashRecord};
use crate::executor::{ExecutorError, RunPolicy};
use crate::failure::FailureStats;
use crate::strategies::{mutate_with, scheduled_mutant, Strategy};
use crate::target::{BootPlan, CrashVerdict, FuzzTarget, IrisHvTarget, TargetFactory};
use crate::testcase::TestCase;
use iris_core::forest::StateId;
use iris_core::seed::VmSeed;
use iris_core::trace::RecordedTrace;
use iris_guest::workloads::Workload;
use iris_hv::coverage::CoverageMap;
use iris_vtx::exit::ExitReason;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of a guided run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GuidedResult {
    /// Mutants executed.
    pub executions: u64,
    /// Corpus size at the end (initial seeds + promoted mutants).
    pub corpus_size: usize,
    /// Mutants promoted for discovering new coverage.
    pub promotions: u64,
    /// Total unique lines discovered over the whole run.
    pub total_lines: u64,
    /// Lines the initial seeds alone covered (the baseline).
    pub baseline_lines: u64,
    /// Failure statistics.
    pub failures: FailureStats,
    /// Coverage growth: total lines after each sync point — each 1/16
    /// of the budget for the sequential loop, each generation barrier
    /// for the shared engine.
    pub growth: Vec<u64>,
    /// The promoted mutants, in promotion order — the shared-corpus
    /// determinism guarantee covers the corpus *order*, so the
    /// serialized result carries it.
    pub promoted: Vec<VmSeed>,
    /// Crash corpus over the run (signature-deduplicated records, every
    /// observation counted) — what `iris guided --corpus` persists.
    pub crashes: Corpus,
}

/// Configuration for a guided run.
#[derive(Debug, Clone, Copy)]
pub struct GuidedConfig {
    /// Total mutant executions.
    pub budget: u64,
    /// RNG seed.
    pub rng_seed: u64,
    /// Dummy-VM RAM.
    pub ram_bytes: u64,
    /// Slots per generation of the shared-corpus engine (clamped to
    /// ≥ 1; the sequential loop ignores it). Smaller generations fold
    /// discoveries back into the scheduling corpus sooner; larger ones
    /// expose more parallelism between sync points.
    pub generation: u64,
}

impl Default for GuidedConfig {
    fn default() -> Self {
        Self {
            budget: 2_000,
            rng_seed: 42,
            ram_bytes: 16 << 20,
            generation: 256,
        }
    }
}

/// The initial corpus: the first seed of each distinct exit reason —
/// the trace's "dictionary" of behaviours. Shared by every driver, and
/// public because distributed workers rebuild the scheduling corpus
/// locally as `initial_corpus(trace) ++ promoted` instead of shipping
/// it over the wire (the trace re-records deterministically from the
/// job spec).
#[must_use]
pub fn initial_corpus(trace: &RecordedTrace) -> Vec<VmSeed> {
    let mut corpus: Vec<VmSeed> = Vec::new();
    for seed in &trace.seeds {
        if !corpus.iter().any(|s| s.reason == seed.reason) {
            corpus.push(seed.clone());
        }
    }
    corpus
}

/// The baseline pass every driver shares: submit the initial corpus
/// once on a fresh booted target and return the union of its coverage
/// (resetting on crashes). The shared engine runs this outside the
/// batch, so its baseline is identical to the sequential loop's for
/// every `jobs` count.
fn baseline_coverage<F: TargetFactory>(
    target: &mut F::Target<'_>,
    corpus: &[VmSeed],
) -> CoverageMap {
    let mut seen = CoverageMap::new();
    for seed in corpus {
        let out = target.submit(seed);
        seen.merge(&out.coverage);
        if out.crash.is_some() {
            // lint:allow(slot-reset-law) -- sequential corpus warm-up outside the slot protocol: this reset is crash recovery, not slot state; run_slot resets unconditionally
            target.reset();
        }
    }
    seen
}

/// The workload a trace was recorded from, by label (crash records name
/// their test case's workload). Unlabelled/custom traces fall back to
/// OS BOOT.
fn workload_of(trace: &RecordedTrace) -> Workload {
    Workload::ALL
        .into_iter()
        .find(|w| w.label() == trace.label)
        .unwrap_or(Workload::OsBoot)
}

/// The baseline pass over an explicit factory: build one private booted
/// target and run the initial corpus through `baseline_coverage`'s
/// sequential warm-up. The shared engine (and the `crates/dist`
/// coordinator, which runs this on the serving host) measures the
/// baseline *outside* the batch, so it is identical for every jobs
/// count and every fleet size.
#[must_use]
pub fn measure_baseline<F: TargetFactory>(
    factory: &F,
    trace: &RecordedTrace,
    corpus: &[VmSeed],
) -> CoverageMap {
    let mut target = factory.build(BootPlan::post_boot(trace));
    target.boot();
    baseline_coverage::<F>(&mut target, corpus)
}

/// The synthetic test case a guided crash record carries: `seed_index`
/// is the mutation base's index within the scheduling corpus (not a
/// trace index), `mutants` is the run's budget.
fn guided_testcase(
    workload: Workload,
    base_index: usize,
    reason: ExitReason,
    area: crate::mutation::SeedArea,
    config: GuidedConfig,
) -> TestCase {
    TestCase {
        mutants: config.budget as usize,
        ..TestCase::new(workload, base_index, reason, area, config.rng_seed)
    }
}

/// Run the coverage-guided loop seeded from a recorded trace on the
/// stock backend, sized per `config.ram_bytes`.
///
/// The initial corpus is a sample of the trace's seeds (one per distinct
/// exit reason — the trace's "dictionary" of behaviours).
#[must_use]
pub fn run_guided(trace: &RecordedTrace, config: GuidedConfig) -> GuidedResult {
    run_guided_with(&IrisHvTarget::with_ram(config.ram_bytes), trace, config)
}

/// [`run_guided`] over an explicit backend factory (the factory's
/// dummy-VM sizing wins over `config.ram_bytes`).
#[must_use]
pub fn run_guided_with<F: TargetFactory>(
    factory: &F,
    trace: &RecordedTrace,
    config: GuidedConfig,
) -> GuidedResult {
    // lint:allow(rng-law) -- the guided driver's scheduling RNG is seeded from config.rng_seed, a recorded input; mutant bytes still flow through mutation::mutant_rng
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let workload = workload_of(trace);

    let mut corpus = initial_corpus(trace);
    if corpus.is_empty() {
        return GuidedResult::default();
    }

    // One long-lived target: `s1` is the post-boot snapshot, so crash
    // recovery ([`FuzzTarget::reset`]) restores it in place; only a
    // SUT-fatal crash rebuilds the stack from scratch.
    let mut target = factory.build(BootPlan::post_boot(trace));
    target.boot();

    // Baseline: run the initial corpus once.
    let mut seen = baseline_coverage::<F>(&mut target, &corpus);
    let baseline_lines = seen.lines();

    let mut failures = FailureStats::default();
    let mut promotions = 0u64;
    let mut promoted = Vec::new();
    let mut crashes = Corpus::new();
    let mut growth = Vec::new();
    let checkpoint = (config.budget / 16).max(1);

    for i in 0..config.budget {
        let base_idx = (i % corpus.len() as u64) as usize;
        // lint:allow(panic-path-audit) -- the index is reduced modulo Strategy::ALL.len() in the expression itself
        let strategy = Strategy::ALL[(i as usize / corpus.len()) % Strategy::ALL.len()];
        let area = if rng.gen_bool(0.7) {
            crate::mutation::SeedArea::Vmcs
        } else {
            crate::mutation::SeedArea::Gpr
        };
        let donor_idx = rng.gen_range(0..corpus.len());
        let (mutant, reason) = {
            // lint:allow(panic-path-audit) -- base_idx is i % corpus.len(), in bounds by construction
            let base = &corpus[base_idx];
            // lint:allow(panic-path-audit) -- donor_idx is drawn from gen_range(0..corpus.len()), in bounds by construction
            let donor = &corpus[donor_idx];
            (
                mutate_with(base, area, strategy, Some(donor), &mut rng),
                base.reason,
            )
        };

        let out = target.submit(&mutant);
        failures.record_kind(out.crash.as_ref().map(|v| v.kind));
        if let Some(verdict) = &out.crash {
            crashes.push(CrashRecord {
                testcase: guided_testcase(workload, base_idx, reason, area, config),
                mutant_index: i as usize,
                seed: mutant.clone(),
                mutation: None,
                kind: verdict.kind,
                console: verdict.console.clone(),
            });
        }

        let new_lines = seen.new_lines_from(&out.coverage);
        if new_lines > 0 {
            seen.merge(&out.coverage);
            // Feedback: interesting mutants join the corpus.
            promoted.push(mutant.clone());
            corpus.push(mutant);
            promotions += 1;
        }

        if out.crash.is_some() {
            // lint:allow(slot-reset-law) -- sequential reference path, not a slot: conditional reset is crash recovery; the parallel slot path resets unconditionally in run_slot
            target.reset();
        }
        if (i + 1) % checkpoint == 0 {
            growth.push(seen.lines());
        }
    }

    GuidedResult {
        executions: config.budget,
        corpus_size: corpus.len(),
        promotions,
        total_lines: seen.lines(),
        baseline_lines,
        failures,
        growth,
        promoted,
        crashes,
    }
}

/// Progress snapshot handed to [`run_guided_shared_observed`]'s
/// observer at every generation barrier, after the merge — drive
/// progress lines, persist the crash corpus incrementally, or build a
/// durable checkpoint ([`GenerationProgress::checkpoint`]); pair with
/// [`crate::checkpoint::JsonWriter`] /
/// [`crate::corpus::CorpusWriter`] to keep the JSON I/O off the
/// engine's thread.
#[derive(Debug)]
pub struct GenerationProgress<'a> {
    /// Generations completed so far (1-based after the first barrier).
    pub generation: usize,
    /// Slots executed so far.
    pub executed: u64,
    /// The run's total budget.
    pub budget: u64,
    /// Unique lines covered so far.
    pub total_lines: u64,
    /// Scheduling-corpus size (initial seeds + promotions so far).
    pub corpus_size: usize,
    /// Promotions so far.
    pub promotions: u64,
    /// The crash corpus so far.
    pub crashes: &'a Corpus,
    /// Lines the initial corpus alone covered.
    pub baseline_lines: u64,
    /// Failure counters folded so far.
    pub failures: FailureStats,
    /// The evolving coverage map at this barrier.
    pub seen: &'a CoverageMap,
    /// The promoted mutants so far, in promotion order.
    pub promoted: &'a [VmSeed],
    /// Promotion lineage, aligned with `promoted` (see
    /// [`corpus_paths`]).
    pub lineage: &'a [(usize, bool)],
    /// The growth curve so far (one point per completed generation).
    pub growth: &'a [u64],
}

impl GenerationProgress<'_> {
    /// Snapshot this barrier's state as a durable
    /// [`GuidedCheckpoint`] carrying `fingerprint` — a barrier is the
    /// one point where the engine's state is complete and
    /// deterministic, so the snapshot resumes byte-identically.
    #[must_use]
    pub fn checkpoint(&self, fingerprint: &str) -> GuidedCheckpoint {
        GuidedCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: fingerprint.to_owned(),
            next_slot: self.executed,
            baseline_lines: self.baseline_lines,
            seen: self.seen.clone(),
            promotions: self.promotions,
            promoted: self.promoted.to_vec(),
            lineage: self.lineage.to_vec(),
            failures: self.failures,
            crashes: self.crashes.clone(),
            growth: self.growth.to_vec(),
        }
    }
}

/// Options for [`run_guided_shared_session`]: where to resume from and
/// how to react to worker panics and stop requests. The default is a
/// fresh, uninterruptible run under the executor's default restart
/// budget — exactly [`run_guided_shared_observed`]'s behavior.
#[derive(Debug, Default)]
pub struct SharedRunOptions<'a> {
    /// Executor fault policy: restart budget, cooperative stop flag,
    /// fault injection. The stop flag is honoured at generation-loop
    /// boundaries as well as the executor's claim points.
    pub policy: RunPolicy<'a>,
    /// Resume from a generation-barrier checkpoint (validate it with
    /// [`GuidedCheckpoint::load`] first — the engine trusts it).
    pub resume: Option<GuidedCheckpoint>,
}

/// What one slot of a generation produced — everything the barrier
/// merge needs, shipped from whichever worker ran the slot. Coverage is
/// only carried when the slot discovered something new against the
/// generation-start map (a superset check of the barrier's evolving
/// map, so pre-filtering loses nothing), keeping the channel traffic
/// per slot small on the common path. Serializable because this is
/// exactly what a distributed worker ships back per guided slot — the
/// wire carries what the in-process channel carries, nothing more.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome {
    /// The mutation base's index within the generation-start corpus.
    pub base_index: usize,
    /// The base's exit reason (for the crash record's test case).
    pub reason: ExitReason,
    /// The area the scheduling law picked.
    pub area: crate::mutation::SeedArea,
    /// Crash verdict plus the crashing mutant, if the slot crashed.
    pub crash: Option<(CrashVerdict, VmSeed)>,
    /// The mutant and its coverage, if it touched blocks beyond the
    /// generation-start map (a promotion candidate).
    pub discovery: Option<(VmSeed, CoverageMap)>,
}

/// A contiguous range of global slot indices `[start, start + len)` —
/// what [`SharedEngine::batch`] freezes for execution, and the unit a
/// distributed guided slot lease covers (a lease is a sub-range of the
/// frozen batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRange {
    /// First global slot index.
    pub start: u64,
    /// Number of slots.
    pub len: u64,
}

/// The seed paths of a corpus assembled as `initial ++ promoted`,
/// rebuilt from the promotion lineage. Entry `i`'s path is the sequence
/// of corpus indices to replay from `s1` to reach the state entry `i`
/// mutates from: initial entries mutate from `s1` itself (empty path),
/// a promoted entry that ran to completion extends its base's path with
/// its own index, and a crashing promotion inherits its base's path
/// unchanged (a crashed state is not a useful mutation base). Shared
/// with `crates/dist`, whose workers rebuild the same paths from the
/// lineage the coordinator ships at each epoch.
#[must_use]
pub fn corpus_paths(initial_len: usize, lineage: &[(usize, bool)]) -> Vec<Vec<usize>> {
    let mut paths: Vec<Vec<usize>> = vec![Vec::new(); initial_len];
    for (k, (base, extended)) in lineage.iter().enumerate() {
        let mut path = paths.get(*base).cloned().unwrap_or_default();
        if *extended {
            path.push(initial_len + k);
        }
        paths.push(path);
    }
    paths
}

/// Per-worker slot execution state: one private booted target plus the
/// worker's cache of pinned forest nodes (corpus index → [`StateId`]).
///
/// [`SlotContext::run_slot`] executes one slot of a generation:
/// position the target at the mutation base's state (the state reached
/// by replaying the base's seed path from `s1` — see [`corpus_paths`]),
/// submit the scheduled mutant, and report the outcome. The outcome is
/// pure in `(corpus, paths, seen, rng_seed, slot)` — **exactly**, not
/// empirically: positioning starts from an unconditional reset (or a
/// forest restore, which is state-identical by the forest law), so a
/// slot's outcome cannot depend on which other slots its worker
/// happened to serve first. That independence is what the engine's
/// partition law (byte-identical results for any `jobs`), the
/// executor's re-lease law (a panicked slot re-runs identically on a
/// fresh context), *and* the forest law (byte-identical results with
/// the forest on or off, whatever was evicted) all rest on.
#[derive(Debug)]
pub struct SlotContext<T: FuzzTarget> {
    target: T,
    /// Whether the target has a live snapshot forest (probed once at
    /// construction via `reset_to(ROOT)`).
    forest: bool,
    /// Pinned post-execution node per corpus index (`None` = never
    /// pinned by this worker). A hit that fails to restore (evicted)
    /// falls back to derive-and-re-pin.
    nodes: Vec<Option<StateId>>,
}

impl<T: FuzzTarget> SlotContext<T> {
    /// Boot a private target and probe its forest support.
    pub fn new(mut target: T) -> Self {
        target.boot();
        let forest = target.reset_to(StateId::ROOT);
        Self {
            target,
            forest,
            nodes: Vec::new(),
        }
    }

    /// Position the target at the state `path` names (the state after
    /// replaying `corpus[path[0]], corpus[path[1]], ...` from `s1`).
    fn position(&mut self, corpus: &[VmSeed], path: &[usize]) {
        if self.forest {
            self.position_pinned(corpus, path);
        } else {
            // lint:allow(slot-reset-law) -- this reset is unconditional per slot: every position() starts from s1; the branch selects the restore mechanism (replay vs forest), not whether to reset
            self.target.reset();
            for &ci in path {
                if let Some(seed) = corpus.get(ci) {
                    let _ = self.target.submit(seed);
                }
            }
        }
    }

    /// Forest positioning: restore the path's last pinned node in
    /// O(delta), deriving (and re-pinning) it from the path prefix on a
    /// cache miss or after eviction — slower, never wrong.
    fn position_pinned(&mut self, corpus: &[VmSeed], path: &[usize]) {
        let Some((&last, prefix)) = path.split_last() else {
            // lint:allow(slot-reset-law) -- unconditional per slot: the empty path IS s1; reset here is the forest-mode root restore, not conditional slot state
            self.target.reset();
            return;
        };
        if let Some(&Some(id)) = self.nodes.get(last) {
            if self.target.reset_to(id) {
                return;
            }
        }
        self.position_pinned(corpus, prefix);
        if let Some(seed) = corpus.get(last) {
            let _ = self.target.submit(seed);
        }
        if let Some(id) = self.target.pin_state() {
            if self.nodes.len() <= last {
                self.nodes.resize(last + 1, None);
            }
            if let Some(slot) = self.nodes.get_mut(last) {
                *slot = Some(id);
            }
        }
    }

    /// Execute one slot: schedule the mutant per the slot law, position
    /// at the base's state, submit, and report. See the type docs for
    /// the purity law this must (and does) uphold.
    pub fn run_slot(
        &mut self,
        corpus: &[VmSeed],
        paths: &[Vec<usize>],
        seen: &CoverageMap,
        rng_seed: u64,
        slot: u64,
    ) -> SlotOutcome {
        let scheduled = scheduled_mutant(corpus, rng_seed, slot);
        let path = paths
            .get(scheduled.base_index)
            .map(Vec::as_slice)
            .unwrap_or_default();
        self.position(corpus, path);
        let out = self.target.submit(&scheduled.mutant);
        let crash = out.crash.map(|verdict| (verdict, scheduled.mutant.clone()));
        let discovery =
            (seen.new_lines_from(&out.coverage) > 0).then_some((scheduled.mutant, out.coverage));
        SlotOutcome {
            base_index: scheduled.base_index,
            // lint:allow(panic-path-audit) -- scheduled.base_index was issued by the scheduler from this same corpus snapshot
            reason: corpus[scheduled.base_index].reason,
            area: scheduled.area,
            crash,
            discovery,
        }
    }
}

/// The generational shared-corpus engine as an explicit state machine:
/// freeze a batch ([`SharedEngine::batch`]), execute its slots anywhere
/// — in-process workers, or a distributed fleet shipping
/// [`SlotOutcome`]s over TCP — fold them back in slot order
/// ([`SharedEngine::fold_generation`]), repeat until the budget is
/// spent.
///
/// [`run_guided_shared_session`] drives this machine on the in-process
/// work-stealing executor; the `crates/dist` coordinator drives the
/// *same* machine over the wire. Because slot `g` is a pure function of
/// `(corpus, seen, rng_seed, g)` and the fold order is defined, both
/// drivers produce byte-identical serialized results for any worker
/// count, fleet size, or re-lease history — jobs=1 in-process is the
/// reference semantics for all of them.
#[derive(Debug)]
pub struct SharedEngine {
    workload: Workload,
    config: GuidedConfig,
    /// `config.generation` clamped to ≥ 1.
    generation: u64,
    corpus: Vec<VmSeed>,
    /// Seed path per corpus entry (see [`corpus_paths`]): what a slot
    /// replays (or forest-restores) to reach its base's state.
    paths: Vec<Vec<usize>>,
    /// Promotion lineage, aligned with `promoted`: `(base_index,
    /// extended)` per promotion — the wire/checkpoint form of `paths`.
    lineage: Vec<(usize, bool)>,
    seen: CoverageMap,
    baseline_lines: u64,
    failures: FailureStats,
    promotions: u64,
    promoted: Vec<VmSeed>,
    crashes: Corpus,
    growth: Vec<u64>,
    next_slot: u64,
}

impl SharedEngine {
    /// A fresh engine over `trace`'s initial corpus, with the baseline
    /// coverage already measured (see [`measure_baseline`] — the
    /// baseline runs outside the batch so it is jobs-independent).
    ///
    /// # Panics
    /// Panics if the trace's initial corpus is empty — callers gate on
    /// [`initial_corpus`] first (an empty corpus is a default
    /// [`GuidedResult`], not an engine run).
    #[must_use]
    pub fn fresh(trace: &RecordedTrace, config: GuidedConfig, baseline: CoverageMap) -> Self {
        let corpus = initial_corpus(trace);
        assert!(
            !corpus.is_empty(),
            "guided engine requires a non-empty initial corpus"
        );
        let baseline_lines = baseline.lines();
        let paths = vec![Vec::new(); corpus.len()];
        Self {
            workload: workload_of(trace),
            config,
            generation: config.generation.max(1),
            corpus,
            paths,
            lineage: Vec::new(),
            seen: baseline,
            baseline_lines,
            failures: FailureStats::default(),
            promotions: 0,
            promoted: Vec::new(),
            crashes: Corpus::new(),
            growth: Vec::new(),
            next_slot: 0,
        }
    }

    /// Rebuild an engine from a generation-barrier checkpoint. The
    /// checkpoint's fingerprint was validated at load
    /// ([`GuidedCheckpoint::load`]) — what remains is structural
    /// sanity: a checkpoint is only taken at a barrier, so `next_slot`
    /// must sit on one. The scheduling corpus is always the initial
    /// corpus plus the promotions, in promotion order — rebuilt here
    /// instead of stored.
    ///
    /// # Panics
    /// Panics on a malformed checkpoint (a `next_slot` beyond the
    /// budget or off a generation boundary) or an empty initial corpus.
    #[must_use]
    pub fn resume(trace: &RecordedTrace, config: GuidedConfig, cp: GuidedCheckpoint) -> Self {
        let generation = config.generation.max(1);
        assert!(
            cp.next_slot <= config.budget,
            "guided checkpoint is past the budget: {} > {}",
            cp.next_slot,
            config.budget
        );
        assert!(
            cp.next_slot == config.budget || cp.next_slot.is_multiple_of(generation),
            "guided checkpoint slot {} is not a generation boundary (generation {})",
            cp.next_slot,
            generation
        );
        let mut corpus = initial_corpus(trace);
        assert!(
            !corpus.is_empty(),
            "guided engine requires a non-empty initial corpus"
        );
        let initial_len = corpus.len();
        corpus.extend(cp.promoted.iter().cloned());
        assert!(
            cp.lineage.len() == cp.promoted.len(),
            "guided checkpoint lineage ({}) does not match its promotions ({})",
            cp.lineage.len(),
            cp.promoted.len()
        );
        let paths = corpus_paths(initial_len, &cp.lineage);
        Self {
            workload: workload_of(trace),
            config,
            generation,
            corpus,
            paths,
            lineage: cp.lineage,
            seen: cp.seen,
            baseline_lines: cp.baseline_lines,
            failures: cp.failures,
            promotions: cp.promotions,
            promoted: cp.promoted,
            crashes: cp.crashes,
            growth: cp.growth,
            next_slot: cp.next_slot,
        }
    }

    /// The next generation to execute — a frozen batch of slots — or
    /// `None` when the budget is spent. The corpus and coverage
    /// snapshots ([`SharedEngine::corpus`], [`SharedEngine::seen`])
    /// stay frozen while the batch runs; executors only read them.
    #[must_use]
    pub fn batch(&self) -> Option<SlotRange> {
        (self.next_slot < self.config.budget).then(|| SlotRange {
            start: self.next_slot,
            len: self.generation.min(self.config.budget - self.next_slot),
        })
    }

    /// The scheduling corpus frozen for the current batch.
    #[must_use]
    pub fn corpus(&self) -> &[VmSeed] {
        &self.corpus
    }

    /// The coverage map frozen for the current batch.
    #[must_use]
    pub fn seen(&self) -> &CoverageMap {
        &self.seen
    }

    /// Mutants promoted so far, in promotion order. Together with
    /// [`initial_corpus`] this is everything a remote worker needs to
    /// rebuild [`SharedEngine::corpus`] without the wire ever shipping
    /// the full corpus.
    #[must_use]
    pub fn promoted(&self) -> &[VmSeed] {
        &self.promoted
    }

    /// Promotion lineage, aligned with [`SharedEngine::promoted`] —
    /// what a remote worker (or a resumed run) feeds [`corpus_paths`]
    /// to rebuild [`SharedEngine::paths`].
    #[must_use]
    pub fn lineage(&self) -> &[(usize, bool)] {
        &self.lineage
    }

    /// Seed path per corpus entry, frozen for the current batch (see
    /// [`corpus_paths`]).
    #[must_use]
    pub fn paths(&self) -> &[Vec<usize>] {
        &self.paths
    }

    /// The run's scheduling RNG seed (the slot law's `rng_seed`).
    #[must_use]
    pub fn rng_seed(&self) -> u64 {
        self.config.rng_seed
    }

    /// Slots folded through a barrier so far — the resumable prefix.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.next_slot
    }

    /// The run's total slot budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.config.budget
    }

    /// Fold one executed generation back in: the barrier. Outcomes must
    /// arrive in slot order and cover exactly the current
    /// [`SharedEngine::batch`]. Promotions are re-checked against the
    /// *evolving* map so the first slot to reach a block wins, exactly
    /// like a sequential sweep of the batch; crash records and failure
    /// counters fold in slot order; the growth curve gains one point.
    ///
    /// # Panics
    /// Panics when `outcomes` does not cover exactly the current batch
    /// — a protocol violation by the driver, not a runtime condition.
    pub fn fold_generation(&mut self, outcomes: Vec<SlotOutcome>) {
        let len = self.batch().map_or(0, |b| b.len);
        assert!(
            outcomes.len() as u64 == len,
            "generation fold of {} outcomes against a batch of {len}",
            outcomes.len()
        );
        for (offset, out) in outcomes.into_iter().enumerate() {
            let slot = self.next_slot + offset as u64;
            let crashed = out.crash.is_some();
            self.failures
                .record_kind(out.crash.as_ref().map(|(v, _)| v.kind));
            if let Some((verdict, seed)) = out.crash {
                self.crashes.push(CrashRecord {
                    testcase: guided_testcase(
                        self.workload,
                        out.base_index,
                        out.reason,
                        out.area,
                        self.config,
                    ),
                    mutant_index: slot as usize,
                    seed,
                    mutation: None,
                    kind: verdict.kind,
                    console: verdict.console,
                });
            }
            if let Some((mutant, coverage)) = out.discovery {
                if self.seen.new_lines_from(&coverage) > 0 {
                    self.seen.merge(&coverage);
                    // The promoted entry's seed path: its base's path,
                    // extended by its own corpus index when it ran to
                    // completion (a crashed state is not a mutation
                    // base — see corpus_paths).
                    let mut path = self.paths.get(out.base_index).cloned().unwrap_or_default();
                    if !crashed {
                        path.push(self.corpus.len());
                    }
                    self.lineage.push((out.base_index, !crashed));
                    self.paths.push(path);
                    self.promoted.push(mutant.clone());
                    self.corpus.push(mutant);
                    self.promotions += 1;
                }
            }
        }
        self.next_slot += len;
        self.growth.push(self.seen.lines());
    }

    /// Progress through the last completed barrier — the one point
    /// where the engine's state is complete and deterministic, hence
    /// where [`GenerationProgress::checkpoint`] snapshots resume
    /// byte-identically.
    #[must_use]
    pub fn progress(&self) -> GenerationProgress<'_> {
        GenerationProgress {
            generation: self.growth.len(),
            executed: self.next_slot,
            budget: self.config.budget,
            total_lines: self.seen.lines(),
            corpus_size: self.corpus.len(),
            promotions: self.promotions,
            crashes: &self.crashes,
            baseline_lines: self.baseline_lines,
            failures: self.failures,
            seen: &self.seen,
            promoted: &self.promoted,
            lineage: &self.lineage,
            growth: &self.growth,
        }
    }

    /// The run's result through the last completed barrier:
    /// `executions` equals the budget on a completed run, `< budget` on
    /// an interrupted one (the resumable prefix).
    #[must_use]
    pub fn result(&self) -> GuidedResult {
        GuidedResult {
            executions: self.next_slot,
            corpus_size: self.corpus.len(),
            promotions: self.promotions,
            total_lines: self.seen.lines(),
            baseline_lines: self.baseline_lines,
            failures: self.failures,
            growth: self.growth.clone(),
            promoted: self.promoted.clone(),
            crashes: self.crashes.clone(),
        }
    }
}

/// The generational shared-corpus parallel guided engine on the stock
/// backend — see the module docs for the protocol. The serialized
/// result is byte-identical for any `jobs`; jobs=1 is the reference.
#[must_use]
pub fn run_guided_shared(trace: &RecordedTrace, config: GuidedConfig, jobs: usize) -> GuidedResult {
    run_guided_shared_with(
        &IrisHvTarget::with_ram(config.ram_bytes),
        trace,
        config,
        jobs,
    )
}

/// [`run_guided_shared`] over an explicit backend factory.
#[must_use]
pub fn run_guided_shared_with<F: TargetFactory>(
    factory: &F,
    trace: &RecordedTrace,
    config: GuidedConfig,
    jobs: usize,
) -> GuidedResult {
    run_guided_shared_observed(factory, trace, config, jobs, |_| {})
}

/// [`run_guided_shared_with`] with an observer called at every
/// generation barrier (after the merge) — the hook `iris guided
/// --corpus` persists the crash corpus through.
///
/// # Panics
/// Panics if worker panics exhaust the default executor restart budget
/// (a persistent crash-loop) — use [`run_guided_shared_session`] for
/// the typed error.
#[must_use]
pub fn run_guided_shared_observed<F, O>(
    factory: &F,
    trace: &RecordedTrace,
    config: GuidedConfig,
    jobs: usize,
    observe: O,
) -> GuidedResult
where
    F: TargetFactory,
    O: FnMut(GenerationProgress<'_>),
{
    match run_guided_shared_session(
        factory,
        trace,
        config,
        jobs,
        SharedRunOptions::default(),
        observe,
    ) {
        Ok(result) => result,
        // The default options carry no stop flag, so the only
        // reachable error is restart-budget exhaustion.
        // lint:allow(panic-path-audit) -- infallible wrapper by contract: the default options carry no stop flag, so the only error is a persistent crash loop, itself worth a panic
        Err(err) => panic!("guided shared run failed: {err}"),
    }
}

/// The fault-tolerant form of the generational shared-corpus engine:
/// [`run_guided_shared_observed`] plus [`SharedRunOptions`] — resume
/// from a generation-barrier checkpoint, absorb worker panics under an
/// explicit restart budget, and honour a cooperative stop flag.
///
/// Interruption semantics: when the stop flag trips, the generation in
/// flight is **discarded** (a generation is all-or-nothing — its
/// barrier never ran) and the run returns `Ok` with the state through
/// the last completed barrier; `executions` then reads `< budget`, and
/// the observer's last checkpoint resumes the run. A resumed run's
/// final result is byte-identical to an uninterrupted one — the
/// conformance suite pins this over every backend.
///
/// # Errors
/// [`ExecutorError::RestartBudgetExhausted`] when worker panics exceed
/// the policy's budget.
///
/// # Panics
/// Panics on a malformed resume checkpoint (a `next_slot` beyond the
/// budget or off a generation boundary) — checkpoints are
/// fingerprint-validated at load, so this indicates tampering, not a
/// runtime condition.
pub fn run_guided_shared_session<F, O>(
    factory: &F,
    trace: &RecordedTrace,
    config: GuidedConfig,
    jobs: usize,
    options: SharedRunOptions<'_>,
    mut observe: O,
) -> Result<GuidedResult, ExecutorError>
where
    F: TargetFactory,
    O: FnMut(GenerationProgress<'_>),
{
    let corpus0 = initial_corpus(trace);
    if corpus0.is_empty() {
        return Ok(GuidedResult::default());
    }
    let mut engine = match options.resume {
        Some(cp) => SharedEngine::resume(trace, config, cp),
        None => {
            // Baseline: one target, the initial corpus once — identical
            // for every jobs count (the baseline is not part of the
            // batch).
            let baseline = measure_baseline(factory, trace, &corpus0);
            SharedEngine::fresh(trace, config, baseline)
        }
    };
    while let Some(batch) = engine.batch() {
        // Stop check at the generation boundary: don't launch a batch
        // that a tripped flag would immediately abandon.
        if options.policy.stop_requested() {
            break;
        }
        // The generation's indexed batch: one work item per slot. The
        // items carry nothing — the executor's item index *is* the slot
        // offset (global slot = batch.start + index), so no slot array
        // is materialized (a `Vec` of zero-sized items never
        // allocates). The corpus and coverage snapshots stay frozen
        // while the batch runs — workers only read them.
        let items = vec![(); batch.len as usize];
        let gen_corpus = engine.corpus();
        let gen_paths = engine.paths();
        let gen_seen = engine.seen();
        let outcomes = match crate::executor::run_indexed_ctx_with(
            &items,
            jobs,
            &options.policy,
            || {
                // One private booted SlotContext per worker, serving
                // every slot the worker steals this generation. Each
                // slot positions at its base's state from scratch (an
                // unconditional root reset, or a forest restore that is
                // state-identical by the forest law), so no residual
                // state leaks between the slots a worker serves. A
                // worker that panics is torn down and rebuilt here, and
                // its slot re-executes byte-identically (the slot law
                // is history-independent; a rebuilt context merely
                // starts with a cold node cache).
                SlotContext::new(factory.build(BootPlan::post_boot(trace)))
            },
            |ctx, index, ()| {
                ctx.run_slot(
                    gen_corpus,
                    gen_paths,
                    gen_seen,
                    config.rng_seed,
                    batch.start + index as u64,
                )
            },
        ) {
            Ok(outcomes) => outcomes,
            // A generation is all-or-nothing: an interrupted batch is
            // discarded (its barrier never ran), and the run winds
            // down with the state through the last completed barrier.
            Err(ExecutorError::Interrupted { .. }) => break,
            Err(err) => return Err(err),
        };
        engine.fold_generation(outcomes);
        observe(engine.progress());
    }
    Ok(engine.result())
}

/// Run an ensemble of guided campaigns, sharded over `jobs` worker
/// threads — the §IX figure reproduction at scale: many independent
/// feedback loops (one per config, typically differing in `rng_seed`)
/// instead of one, using every available core.
///
/// Each instance's feedback loop is the sequential [`run_guided`]
/// (promotions feed later scheduling decisions immediately), so
/// parallelism lives *across* instances: each is self-contained and
/// deterministic in its config, and results come back in config order
/// (the shared executor's [`crate::executor::run_indexed`]), so the
/// returned vector is identical for any `jobs` value. N jobs buy N
/// disjoint corpora; for N workers on **one** corpus, use
/// [`run_guided_shared`].
#[must_use]
pub fn run_guided_parallel(
    trace: &RecordedTrace,
    configs: &[GuidedConfig],
    jobs: usize,
) -> Vec<GuidedResult> {
    crate::executor::run_indexed(configs, jobs, |_, config| run_guided(trace, *config))
}

/// [`run_guided_parallel`] over an explicit backend factory, shared by
/// every worker (each instance still builds its own private target).
#[must_use]
pub fn run_guided_parallel_with<F: TargetFactory>(
    factory: &F,
    trace: &RecordedTrace,
    configs: &[GuidedConfig],
    jobs: usize,
) -> Vec<GuidedResult> {
    crate::executor::run_indexed(configs, jobs, |_, config| {
        run_guided_with(factory, trace, *config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::record_trace;
    use iris_guest::workloads::Workload;

    fn boot_trace() -> RecordedTrace {
        record_trace(Workload::OsBoot, 250, 42)
    }

    #[test]
    fn guided_loop_discovers_and_promotes() {
        let trace = boot_trace();
        let r = run_guided(
            &trace,
            GuidedConfig {
                budget: 400,
                ..GuidedConfig::default()
            },
        );
        assert_eq!(r.executions, 400);
        assert!(r.total_lines > r.baseline_lines, "{r:?}");
        assert!(r.promotions > 0, "feedback must promote mutants");
        assert!(r.corpus_size > 5);
        assert_eq!(r.promoted.len() as u64, r.promotions);
        // Growth curve is monotone.
        assert!(r.growth.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn guided_loop_is_deterministic() {
        let trace = boot_trace();
        let cfg = GuidedConfig {
            budget: 150,
            ..GuidedConfig::default()
        };
        let a = run_guided(&trace, cfg);
        let b = run_guided(&trace, cfg);
        assert_eq!(a.total_lines, b.total_lines);
        assert_eq!(a.promotions, b.promotions);
        assert_eq!(a.failures, b.failures);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn guided_loop_records_crash_corpus() {
        let trace = boot_trace();
        let r = run_guided(
            &trace,
            GuidedConfig {
                budget: 400,
                ..GuidedConfig::default()
            },
        );
        assert_eq!(
            r.crashes.observed(),
            r.failures.vm_crashes + r.failures.hv_crashes,
            "every observed crash is counted"
        );
        assert!(r.crashes.unique() > 0, "a 400-mutant run crashes something");
        assert!(r
            .crashes
            .crashes
            .iter()
            .all(|c| c.testcase.workload == Workload::OsBoot));
    }

    #[test]
    fn empty_trace_is_a_default_result_in_both_modes() {
        let empty = RecordedTrace::new("empty");
        let sequential = run_guided(&empty, GuidedConfig::default());
        let shared = run_guided_shared(&empty, GuidedConfig::default(), 2);
        for r in [&sequential, &shared] {
            assert_eq!(r.executions, 0);
            assert_eq!(r.corpus_size, 0);
            assert!(r.growth.is_empty());
            assert!(r.promoted.is_empty());
            assert!(r.crashes.is_empty());
        }
        // Both are exactly the derived zero value.
        let zero = serde_json::to_string(&GuidedResult::default()).unwrap();
        assert_eq!(serde_json::to_string(&sequential).unwrap(), zero);
        assert_eq!(serde_json::to_string(&shared).unwrap(), zero);
    }

    #[test]
    fn shared_engine_is_byte_identical_across_worker_counts() {
        let trace = boot_trace();
        let cfg = GuidedConfig {
            budget: 300,
            generation: 64,
            ..GuidedConfig::default()
        };
        let reference = run_guided_shared(&trace, cfg, 1);
        assert!(reference.promotions > 0, "{reference:?}");
        assert!(reference.total_lines > reference.baseline_lines);
        assert_eq!(
            reference.growth.len(),
            (cfg.budget as usize).div_ceil(cfg.generation as usize),
            "one growth point per generation"
        );
        let baseline = serde_json::to_string(&reference).unwrap();
        for jobs in [2usize, 8] {
            let r = run_guided_shared(&trace, cfg, jobs);
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                baseline,
                "jobs={jobs} diverged from the jobs=1 reference"
            );
        }
    }

    #[test]
    fn shared_engine_promotions_feed_later_generations() {
        // With a generation smaller than the budget, promoted mutants
        // become scheduling bases in later generations: the corpus the
        // final generation schedules over is larger than the initial
        // one whenever anything was promoted.
        let trace = boot_trace();
        let r = run_guided_shared(
            &trace,
            GuidedConfig {
                budget: 300,
                generation: 50,
                ..GuidedConfig::default()
            },
            2,
        );
        assert!(r.promotions > 0);
        assert_eq!(
            r.corpus_size,
            r.promoted.len() + initial_corpus(&trace).len()
        );
        assert!(r.growth.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            r.crashes.observed(),
            r.failures.vm_crashes + r.failures.hv_crashes
        );
    }

    #[test]
    fn shared_engine_ragged_final_generation_spends_the_whole_budget() {
        let trace = boot_trace();
        let cfg = GuidedConfig {
            budget: 70,
            generation: 32, // 32 + 32 + 6
            ..GuidedConfig::default()
        };
        let r = run_guided_shared(&trace, cfg, 2);
        assert_eq!(r.executions, 70);
        assert_eq!(r.failures.submitted, 70);
        assert_eq!(r.growth.len(), 3);
    }

    #[test]
    fn guided_ensemble_is_worker_count_independent() {
        let trace = boot_trace();
        let configs: Vec<GuidedConfig> = (0..4)
            .map(|i| GuidedConfig {
                budget: 80,
                rng_seed: 100 + i,
                ..GuidedConfig::default()
            })
            .collect();
        let snapshot = |results: &[GuidedResult]| {
            results
                .iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect::<Vec<_>>()
        };
        let one = run_guided_parallel(&trace, &configs, 1);
        let four = run_guided_parallel(&trace, &configs, 4);
        assert_eq!(one.len(), 4);
        assert_eq!(snapshot(&one), snapshot(&four));
        // Each instance equals its standalone sequential run.
        for (cfg, r) in configs.iter().zip(&one) {
            let solo = run_guided(&trace, *cfg);
            assert_eq!(
                serde_json::to_string(&solo).unwrap(),
                serde_json::to_string(r).unwrap()
            );
        }
    }
}
