//! # iris-fuzzer — the IRIS-based fuzzer prototype (§VII)
//!
//! The paper's proof of concept: use IRIS replay to move the hypervisor
//! into a valid VM state by replaying recorded seeds, pick a target
//! `VM_seed_R`, generate `M` single-bit-flip mutants of its VMCS or GPR
//! area, submit them as a *fuzzing sequence*, and observe new coverage
//! and crashes.
//!
//! * [`mutation`] — the bit-flip rules over the two seed areas.
//! * [`strategies`] — extended greybox mutations (havoc, arith,
//!   interesting values, splice) per the paper's §IX future work.
//! * [`guided`] — a coverage-guided feedback loop over the replay
//!   engine, also from §IX.
//! * [`testcase`] — `(W, VM_seed_R, A, M)` test-case planning.
//! * [`campaign`] — replay-to-state, baseline, sequence, recovery.
//! * [`parallel`] — sharded multi-worker campaign execution with
//!   deterministic (worker-count-independent) aggregation.
//! * [`failure`] — VM-crash vs hypervisor-crash classification.
//! * [`corpus`] — reproducible, signature-deduplicated crash records.
//! * [`table1`] — assembly of the paper's Table I.
//!
//! ```
//! use iris_core::record::Recorder;
//! use iris_fuzzer::campaign::Campaign;
//! use iris_fuzzer::mutation::SeedArea;
//! use iris_fuzzer::testcase::TestCase;
//! use iris_guest::workloads::Workload;
//! use iris_hv::hypervisor::Hypervisor;
//! use iris_vtx::exit::ExitReason;
//!
//! let mut hv = Hypervisor::new();
//! let dom = hv.create_hvm_domain(16 << 20);
//! let trace = Recorder::new().record_workload(
//!     &mut hv, dom, "OS BOOT", Workload::OsBoot.generate(80, 42));
//! let idx = trace.seeds.iter().position(|s| s.reason == ExitReason::CrAccess).unwrap();
//! let tc = TestCase { mutants: 25, ..TestCase::new(
//!     Workload::OsBoot, idx, ExitReason::CrAccess, SeedArea::Vmcs, 7) };
//! let result = Campaign::new().run_test_case(&trace, &tc);
//! assert!(result.baseline_lines > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod failure;
pub mod guided;
pub mod mutation;
pub mod parallel;
pub mod strategies;
pub mod table1;
pub mod testcase;

pub use campaign::{Campaign, TestCaseResult};
pub use corpus::{Corpus, CrashRecord};
pub use failure::{FailureKind, FailureStats};
pub use guided::{run_guided, run_guided_parallel, GuidedConfig, GuidedResult};
pub use mutation::{mutate, AppliedMutation, SeedArea};
pub use parallel::{available_jobs, CampaignReport, ParallelCampaign};
pub use strategies::{mutate_with, Strategy};
pub use table1::Table1;
pub use testcase::TestCase;
