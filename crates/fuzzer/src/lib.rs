//! # iris-fuzzer — the IRIS-based fuzzer prototype (§VII)
//!
//! The paper's proof of concept: use IRIS replay to move the hypervisor
//! into a valid VM state by replaying recorded seeds, pick a target
//! `VM_seed_R`, generate `M` single-bit-flip mutants of its VMCS or GPR
//! area, submit them as a *fuzzing sequence*, and observe new coverage
//! and crashes.
//!
//! * [`target`] — the pluggable [`FuzzTarget`]/[`TargetFactory`] API:
//!   the SUT lifecycle (boot to `s1`, submit, reset) behind a trait,
//!   with the stock ([`IrisHvTarget`]) and fault-injection
//!   ([`FaultyHvTarget`]) backends registered under [`Backend`].
//! * [`mutation`] — the bit-flip rules over the two seed areas.
//! * [`strategies`] — extended greybox mutations (havoc, arith,
//!   interesting values, splice) per the paper's §IX future work.
//! * [`guided`] — the §IX coverage-guided feedback loop over the
//!   replay engine: the classic sequential loop, independent
//!   ensembles, and the generational shared-corpus parallel engine
//!   ([`guided::run_guided_shared`]).
//! * [`testcase`] — `(W, VM_seed_R, A, M)` test-case planning.
//! * [`campaign`] — baseline, fuzzing sequence, crash recovery, all
//!   through [`FuzzTarget`].
//! * [`executor`] — the shared work-stealing executor (atomic-cursor
//!   claim, per-worker context, index-ordered delivery) every parallel
//!   driver runs on.
//! * [`parallel`] — sharded multi-worker campaign execution with
//!   deterministic (worker-count-independent) aggregation; workers
//!   build private target instances from a shared factory.
//! * [`failure`] — VM-crash vs hypervisor-crash classification.
//! * [`corpus`] — reproducible, signature-deduplicated crash records.
//! * [`table1`] — assembly of the paper's Table I.
//!
//! A fuzzing sequence against a backend, by hand — boot to `s1`, submit
//! the baseline, mutate, reset on a crash:
//!
//! ```
//! use iris_fuzzer::mutation::{mutate, SeedArea};
//! use iris_fuzzer::target::{record_trace, BootPlan, FuzzTarget, IrisHvTarget, TargetFactory};
//! use iris_guest::workloads::Workload;
//! use iris_vtx::exit::ExitReason;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let trace = record_trace(Workload::OsBoot, 80, 42);
//! let idx = trace.seeds.iter().position(|s| s.reason == ExitReason::CrAccess).unwrap();
//!
//! let factory = IrisHvTarget::default(); // or FaultyHvTarget, or your own
//! let mut target = factory.build(BootPlan::for_test_case(&trace, idx));
//! target.boot();
//! let baseline = target.submit(&trace.seeds[idx]);
//! assert!(baseline.coverage.lines() > 0);
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! for _ in 0..25 {
//!     let (mutant, _) = mutate(&trace.seeds[idx], SeedArea::Vmcs, &mut rng);
//!     if target.submit(&mutant).crash.is_some() {
//!         target.reset(); // restore s1 and keep fuzzing
//!     }
//! }
//! ```
//!
//! The [`Campaign`] / [`ParallelCampaign`] / [`guided`] / [`Table1`]
//! drivers wrap exactly this loop (plus corpus bookkeeping) and accept
//! any factory, so a new backend only implements the trait pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod corpus;
pub mod executor;
pub mod failure;
pub mod guided;
pub mod mutation;
pub mod parallel;
pub mod strategies;
pub mod table1;
pub mod target;
pub mod testcase;

pub use campaign::{Campaign, TestCaseResult};
pub use checkpoint::{atomic_write_json, CampaignCheckpoint, GuidedCheckpoint, JsonWriter};
pub use corpus::{Corpus, CrashRecord};
pub use executor::{ExecutorError, FaultPlan, RunPolicy};
pub use failure::{FailureKind, FailureStats};
pub use guided::{
    run_guided, run_guided_parallel, run_guided_parallel_with, run_guided_shared,
    run_guided_shared_observed, run_guided_shared_session, run_guided_shared_with, run_guided_with,
    GenerationProgress, GuidedConfig, GuidedResult, SharedRunOptions,
};
pub use mutation::{mutate, AppliedMutation, SeedArea};
pub use parallel::{available_jobs, CampaignReport, CampaignRunOptions, ParallelCampaign};
pub use strategies::{mutate_with, Strategy};
pub use table1::Table1;
pub use target::{
    detect_planted_faults, record_trace, render_planted_fault_report, Backend, BootPlan,
    CrashVerdict, FaultyHvTarget, FuzzTarget, HvTarget, IrisHvTarget, SubmitOutcome, TargetFactory,
};
pub use testcase::TestCase;
