//! Campaign execution (§VII, Fig. 11).
//!
//! A campaign runs test cases: each replays the recorded behavior up to
//! `VM_seed_R` through the IRIS replay mechanism (moving the hypervisor
//! into the valid state `s1`), measures the coverage baseline of the
//! un-mutated `VM_seed_R`, then submits the fuzzing sequence
//! `C(VM_seed_R)_1..M` and reports the newly discovered coverage and the
//! failure statistics — one Table I cell per test case.
//!
//! The SUT lifecycle (reach `s1`, submit, reset after a crash) lives
//! behind the [`FuzzTarget`] trait, so the same driver fuzzes any
//! registered backend ([`crate::target::Backend`]); the driver itself is
//! generic over the [`TargetFactory`], keeping submission statically
//! dispatched.

use crate::corpus::{Corpus, CrashRecord};
use crate::failure::FailureStats;
use crate::mutation::{mutant_rng, mutate};
use crate::target::{BootPlan, FuzzTarget, IrisHvTarget, TargetFactory};
use crate::testcase::{MutantRange, TestCase};
use iris_core::trace::RecordedTrace;
use iris_hv::coverage::CoverageMap;
use serde::{Deserialize, Serialize};

/// The result of one test case — one Table I cell contribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCaseResult {
    /// The test case that ran.
    pub testcase: TestCase,
    /// Coverage lines of the un-mutated `VM_seed_R` (the baseline).
    pub baseline_lines: u64,
    /// New lines the fuzzing sequence discovered on top of the baseline.
    pub new_lines: u64,
    /// The paper's "% new code coverage discovered".
    pub coverage_increase_percent: f64,
    /// Failure statistics over the sequence.
    pub failures: FailureStats,
}

/// Default dummy-VM RAM for campaign drivers (sequential and sharded):
/// the seeds carry the state, so RAM only matters for the
/// guest-memory-dependent paths.
pub const DEFAULT_RAM_BYTES: u64 = 16 << 20;

/// Campaign driver, generic over the fuzz-target backend.
#[derive(Debug)]
pub struct Campaign<F: TargetFactory = IrisHvTarget> {
    /// Builds the per-test-case target instances.
    pub factory: F,
    /// Saved crashes.
    pub corpus: Corpus,
}

impl Default for Campaign {
    fn default() -> Self {
        Self::new()
    }
}

impl Campaign {
    /// A stock-backend campaign with small dummy VMs (the seeds carry
    /// the state; RAM only matters for guest-memory-dependent paths).
    #[must_use]
    pub fn new() -> Self {
        Self::with_factory(IrisHvTarget::default())
    }
}

impl<F: TargetFactory> Campaign<F> {
    /// A campaign over an explicit backend factory.
    #[must_use]
    pub fn with_factory(factory: F) -> Self {
        Self {
            factory,
            corpus: Corpus::new(),
        }
    }

    /// Run one test case against a recorded trace.
    ///
    /// The trace must be the recording of `testcase.workload`;
    /// `testcase.seed_index` selects `VM_seed_R` within it.
    pub fn run_test_case(&mut self, trace: &RecordedTrace, testcase: &TestCase) -> TestCaseResult {
        self.run_test_case_cov(trace, testcase).0
    }

    /// Like [`Campaign::run_test_case`], but also returns the coverage
    /// map the test case touched (baseline ∪ discovered). The parallel
    /// executor merges these word-wise into the campaign-wide map.
    pub fn run_test_case_cov(
        &mut self,
        trace: &RecordedTrace,
        testcase: &TestCase,
    ) -> (TestCaseResult, CoverageMap) {
        run_test_case_with(&self.factory, &mut self.corpus, trace, testcase)
    }
}

/// Partial output of one mutant-range run — everything the aggregator
/// needs to reassemble the test case's [`TestCaseResult`]. One value is
/// produced per chunk, so the parallel executor's channel carries one
/// message per chunk, not per seed. Serializable because `crates/dist`
/// ships exactly this value over the wire as a `ChunkDone` frame — the
/// wire protocol adds nothing to what the in-process channel carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkOutput {
    /// The mutant range this output covers.
    pub range: MutantRange,
    /// Coverage of the un-mutated `VM_seed_R` — identical for every
    /// chunk of a test case (boot is deterministic; the conformance
    /// suite asserts it), carried so any chunk can supply the baseline.
    pub baseline: CoverageMap,
    /// Blocks the range's mutants touched beyond the baseline.
    pub discovered: CoverageMap,
    /// Failure counters over the range (`submitted == range.len`).
    pub failures: FailureStats,
    /// Chunk-local crash corpus (records carry absolute mutant indices).
    pub corpus: Corpus,
}

/// The range-parameterized core every driver shares: build a private
/// target from `factory`, boot it to `s1`, measure the `VM_seed_R`
/// baseline, then submit mutants `range.start..range.end()` of the
/// fuzzing sequence with crash recovery.
///
/// Each mutant draws from the per-range RNG law
/// ([`crate::mutation::mutant_rng`]): the chunk seeds its RNG from
/// `rng_seed ⊕ range_start` and re-derives it per index, so the mutant
/// stream — and, because submissions are history-independent from the
/// canonical post-baseline state, the outcome stream — is invariant
/// under the partition of `0..mutants` into chunks. Sequential drivers
/// call this once with [`MutantRange::whole`]; the sharded executor
/// calls it per stolen chunk.
///
/// # Panics
/// Panics if `range` reaches beyond `testcase.mutants` — a malformed
/// chunk list, not a runtime condition.
pub fn run_mutant_range_with<F: TargetFactory>(
    factory: &F,
    trace: &RecordedTrace,
    testcase: &TestCase,
    range: MutantRange,
) -> ChunkOutput {
    // Reach s1 once per chunk; the target snapshots it so crash
    // recovery is a restore in O(dirty state) instead of rebuilding the
    // stack and replaying the whole prefix again. (`for_test_case`
    // bounds-checks the seed index.)
    let mut target = factory.build(BootPlan::for_test_case(trace, testcase.seed_index));
    target.boot();
    run_mutant_range_on(
        &mut target,
        &mut |t: &mut _| t.reset(),
        trace,
        testcase,
        range,
    )
}

/// The chunk core over an **already-positioned** target: `target` must
/// sit in the test case's `s1` (the state right before `VM_seed_R`),
/// and `restore_s1` must re-establish exactly that state — it is
/// invoked after every crashing mutant, before the driver re-submits
/// `VM_seed_R`. [`run_mutant_range_with`] passes a freshly booted
/// target and [`FuzzTarget::reset`]; the forest-aware sharded executor
/// instead passes a long-lived target positioned via a pinned
/// [`iris_core::forest::SnapshotForest`] node, with a `restore_s1`
/// that restores that node in O(delta). Because the positioned state is
/// the same in both cases (a forest node's state is a pure function of
/// the replayed prefix), the chunk output is byte-identical either way.
///
/// # Panics
/// Panics if `range` reaches beyond `testcase.mutants` or
/// `testcase.seed_index` beyond the trace — a malformed chunk list, not
/// a runtime condition.
pub fn run_mutant_range_on<T: FuzzTarget + ?Sized>(
    target: &mut T,
    restore_s1: &mut dyn FnMut(&mut T),
    trace: &RecordedTrace,
    testcase: &TestCase,
    range: MutantRange,
) -> ChunkOutput {
    assert!(
        range.end() <= testcase.mutants,
        "chunk {range:?} beyond the test case's {} mutants",
        testcase.mutants
    );
    assert!(
        testcase.seed_index < trace.seeds.len(),
        "test case seed index {} beyond the trace's {} seeds",
        testcase.seed_index,
        trace.seeds.len()
    );
    // lint:allow(panic-path-audit) -- seed_index asserted in range just above
    let target_seed = &trace.seeds[testcase.seed_index];
    let baseline = target.submit(target_seed).coverage;

    // The fuzzing (sub-)sequence.
    let mut discovered = CoverageMap::new();
    let mut failures = FailureStats::default();
    let mut corpus = Corpus::new();
    for i in range.indices() {
        let (mutant, applied) = mutate(
            target_seed,
            testcase.area,
            &mut mutant_rng(testcase.rng_seed, i as u64),
        );
        let out = target.submit(&mutant);
        failures.record_kind(out.crash.as_ref().map(|v| v.kind));
        for (b, l) in out.coverage.iter() {
            if !baseline.contains(b) {
                discovered.hit(b, l);
            }
        }
        if let Some(verdict) = out.crash {
            corpus.push(CrashRecord {
                testcase: testcase.clone(),
                mutant_index: i,
                seed: mutant,
                mutation: applied,
                kind: verdict.kind,
                console: verdict.console,
            });
            // Back to s1 (the paper's test-case restart after a
            // failure — a snapshot or forest-node restore, or a full
            // rebuild when the SUT itself died), then re-establish the
            // post-target state.
            restore_s1(target);
            let _ = target.submit(target_seed);
        }
    }

    ChunkOutput {
        range,
        baseline,
        discovered,
        failures,
        corpus,
    }
}

/// Reassemble a test case's [`TestCaseResult`] from its chunk outputs.
///
/// `chunks` must arrive in ascending `range.start` order and partition
/// `0..testcase.mutants` exactly (debug-asserted) — the defined merge
/// order that keeps the assembled result byte-identical however the
/// chunks were scheduled. Coverage merges word-wise, failure counters
/// fold, and chunk-local corpora are absorbed **by move** into `corpus`
/// (no crash-seed re-cloning), preserving absolute-mutant-index
/// discovery order so the dedup keeps the same first-reproducer a
/// sequential run keeps.
///
/// Returns the result plus the coverage the test case touched
/// (baseline ∪ discovered), like the unchunked core did.
///
/// # Panics
/// Panics if `chunks` is empty — every test case produces at least one
/// chunk ([`TestCase::chunks`]).
pub fn assemble_test_case(
    testcase: &TestCase,
    chunks: impl IntoIterator<Item = ChunkOutput>,
    corpus: &mut Corpus,
) -> (TestCaseResult, CoverageMap) {
    let mut baseline: Option<CoverageMap> = None;
    let mut discovered = CoverageMap::new();
    let mut failures = FailureStats::default();
    let mut next = 0usize;
    for chunk in chunks {
        debug_assert_eq!(
            chunk.range.start, next,
            "chunks must be ordered by range start and partition the mutant range"
        );
        next = chunk.range.end();
        match &baseline {
            None => baseline = Some(chunk.baseline),
            Some(first) => debug_assert_eq!(
                first, &chunk.baseline,
                "per-chunk baselines diverged — the target's boot is not deterministic"
            ),
        }
        discovered.merge(&chunk.discovered);
        failures.merge(&chunk.failures);
        corpus.absorb(chunk.corpus);
    }
    debug_assert_eq!(next, testcase.mutants, "chunks must cover 0..mutants");
    // lint:allow(panic-path-audit) -- TestCase::chunks always yields at least one chunk (debug-asserted above), so the first chunk set the baseline
    let baseline = baseline.expect("every test case yields at least one chunk");

    let baseline_lines = baseline.lines();
    let new_lines = discovered.lines();
    let result = TestCaseResult {
        testcase: testcase.clone(),
        baseline_lines,
        new_lines,
        // One percent rule for the whole crate (failure.rs): a
        // zero-line baseline with discoveries is 100% new, not 0%.
        coverage_increase_percent: crate::failure::percent(new_lines, baseline_lines),
        failures,
    };
    let mut touched = baseline;
    touched.merge(&discovered);
    (result, touched)
}

/// The whole-test-case convenience every sequential driver shares: one
/// [`run_mutant_range_with`] over the full mutant range (one boot, one
/// baseline measurement), assembled via [`assemble_test_case`]. Because
/// the RNG law is per-index, this produces byte-identical results to
/// any chunked execution of the same test case.
pub fn run_test_case_with<F: TargetFactory>(
    factory: &F,
    corpus: &mut Corpus,
    trace: &RecordedTrace,
    testcase: &TestCase,
) -> (TestCaseResult, CoverageMap) {
    let chunk = run_mutant_range_with(
        factory,
        trace,
        testcase,
        MutantRange::whole(testcase.mutants),
    );
    assemble_test_case(testcase, std::iter::once(chunk), corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::SeedArea;
    use crate::target::{record_trace, FaultyHvTarget};
    use crate::testcase::TestCase;
    use iris_guest::workloads::Workload;
    use iris_vtx::exit::ExitReason;

    fn boot_trace(n: usize) -> RecordedTrace {
        record_trace(Workload::OsBoot, n, 42)
    }

    fn find_seed(trace: &RecordedTrace, reason: ExitReason) -> usize {
        trace
            .seeds
            .iter()
            .position(|s| s.reason == reason)
            .expect("reason present in trace")
    }

    #[test]
    fn vmcs_mutation_discovers_new_coverage_and_crashes() {
        let trace = boot_trace(120);
        let idx = find_seed(&trace, ExitReason::CrAccess);
        let mut campaign = Campaign::new();
        let tc = TestCase {
            mutants: 150,
            ..TestCase::new(
                Workload::OsBoot,
                idx,
                ExitReason::CrAccess,
                SeedArea::Vmcs,
                3,
            )
        };
        let r = campaign.run_test_case(&trace, &tc);
        assert!(r.baseline_lines > 0);
        assert!(r.new_lines > 0, "bit flips must open new paths");
        assert!(r.coverage_increase_percent > 0.0);
        // Flipping VMCS values (incl. the exit reason) produces crashes.
        assert!(
            r.failures.hv_crashes + r.failures.vm_crashes > 0,
            "{:?}",
            r.failures
        );
        assert_eq!(
            campaign.corpus.observed(),
            r.failures.hv_crashes + r.failures.vm_crashes
        );
        // 150 VMCS flips hammer a handful of mutation sites; dedup keeps
        // one reproducer per (kind, site, console) signature.
        let unique = campaign.corpus.unique();
        assert!(unique > 0);
        assert!(
            (unique as u64) < campaign.corpus.observed(),
            "a crashy site must not flood the corpus: {unique} unique of {}",
            campaign.corpus.observed()
        );
    }

    #[test]
    fn gpr_mutation_is_mostly_harmless() {
        let trace = boot_trace(120);
        let idx = find_seed(&trace, ExitReason::Cpuid);
        let mut campaign = Campaign::new();
        let tc = TestCase {
            mutants: 100,
            ..TestCase::new(Workload::OsBoot, idx, ExitReason::Cpuid, SeedArea::Gpr, 4)
        };
        let r = campaign.run_test_case(&trace, &tc);
        // The paper: "In all other cases, the hypervisor is not affected
        // by the mutation" (GPR mutations outside CR ACCESS).
        assert_eq!(r.failures.hv_crashes, 0);
        // But different CPUID leaves do reveal new leaf-handler coverage.
        assert!(r.new_lines > 0);
    }

    #[test]
    fn crash_recovery_restores_the_target_state() {
        let trace = boot_trace(60);
        let idx = find_seed(&trace, ExitReason::CrAccess);
        let mut campaign = Campaign::new();
        let tc = TestCase {
            mutants: 60,
            ..TestCase::new(
                Workload::OsBoot,
                idx,
                ExitReason::CrAccess,
                SeedArea::Vmcs,
                5,
            )
        };
        let r = campaign.run_test_case(&trace, &tc);
        // Even with crashes along the way, all mutants were submitted.
        assert_eq!(r.failures.submitted, 60);
    }

    #[test]
    fn chunked_ranges_reassemble_the_unchunked_result() {
        let trace = boot_trace(80);
        let idx = find_seed(&trace, ExitReason::CrAccess);
        let tc = TestCase {
            mutants: 45,
            ..TestCase::new(
                Workload::OsBoot,
                idx,
                ExitReason::CrAccess,
                SeedArea::Vmcs,
                11,
            )
        };
        let factory = crate::target::IrisHvTarget::default();
        let mut ref_corpus = Corpus::new();
        let (ref_result, ref_cov) = run_test_case_with(&factory, &mut ref_corpus, &trace, &tc);
        assert!(
            ref_result.failures.hv_crashes + ref_result.failures.vm_crashes > 0,
            "the reference run must exercise crash recovery"
        );

        for chunk in [1usize, 7, 16, 45, 100] {
            let outputs: Vec<ChunkOutput> = tc
                .chunks(chunk)
                .map(|r| run_mutant_range_with(&factory, &trace, &tc, r))
                .collect();
            let mut corpus = Corpus::new();
            let (result, cov) = assemble_test_case(&tc, outputs, &mut corpus);
            assert_eq!(
                serde_json::to_string(&result).unwrap(),
                serde_json::to_string(&ref_result).unwrap(),
                "chunk={chunk} diverged from the whole-cell run"
            );
            assert_eq!(cov, ref_cov, "chunk={chunk}: touched coverage diverged");
            assert_eq!(
                serde_json::to_string(&corpus).unwrap(),
                serde_json::to_string(&ref_corpus).unwrap(),
                "chunk={chunk}: corpus diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "beyond the test case")]
    fn out_of_range_chunk_is_a_driver_bug() {
        let trace = boot_trace(40);
        let tc = TestCase {
            mutants: 5,
            ..TestCase::new(Workload::OsBoot, 0, trace.seeds[0].reason, SeedArea::Gpr, 1)
        };
        let _ = run_mutant_range_with(
            &crate::target::IrisHvTarget::default(),
            &trace,
            &tc,
            MutantRange { start: 4, len: 2 },
        );
    }

    #[test]
    fn faulty_backend_detects_the_planted_cpuid_bug_under_gpr_mutation() {
        // The ground-truth scenario: the same GPR fuzzing sequence that
        // is harmless on the stock backend finds the planted reserved-
        // leaf BUG on the faulty one.
        let trace = boot_trace(120);
        let idx = find_seed(&trace, ExitReason::Cpuid);
        let tc = TestCase {
            mutants: 150,
            ..TestCase::new(Workload::OsBoot, idx, ExitReason::Cpuid, SeedArea::Gpr, 4)
        };
        let mut faulty = Campaign::with_factory(FaultyHvTarget::default());
        let r = faulty.run_test_case(&trace, &tc);
        assert!(
            r.failures.hv_crashes > 0,
            "planted CPUID bug must fire under GPR mutation: {:?}",
            r.failures
        );
        assert!(faulty
            .corpus
            .crashes
            .iter()
            .any(|c| c.console.contains("Xen BUG at cpuid.c")));
    }
}
