//! Campaign execution (§VII, Fig. 11).
//!
//! A campaign runs test cases: each replays the recorded behavior up to
//! `VM_seed_R` through the IRIS replay mechanism (moving the hypervisor
//! into the valid state `s1`), measures the coverage baseline of the
//! un-mutated `VM_seed_R`, then submits the fuzzing sequence
//! `C(VM_seed_R)_1..M` and reports the newly discovered coverage and the
//! failure statistics — one Table I cell per test case.

use crate::corpus::{Corpus, CrashRecord};
use crate::failure::{classify, FailureStats};
use crate::mutation::mutate;
use crate::testcase::TestCase;
use iris_core::replay::ReplayEngine;
use iris_core::snapshot::Snapshot;
use iris_core::trace::RecordedTrace;
use iris_hv::coverage::CoverageMap;
use iris_hv::hypervisor::Hypervisor;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The result of one test case — one Table I cell contribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCaseResult {
    /// The test case that ran.
    pub testcase: TestCase,
    /// Coverage lines of the un-mutated `VM_seed_R` (the baseline).
    pub baseline_lines: u64,
    /// New lines the fuzzing sequence discovered on top of the baseline.
    pub new_lines: u64,
    /// The paper's "% new code coverage discovered".
    pub coverage_increase_percent: f64,
    /// Failure statistics over the sequence.
    pub failures: FailureStats,
}

/// Default dummy-VM RAM for campaign drivers (sequential and sharded):
/// the seeds carry the state, so RAM only matters for the
/// guest-memory-dependent paths.
pub const DEFAULT_RAM_BYTES: u64 = 16 << 20;

/// Campaign driver.
#[derive(Debug)]
pub struct Campaign {
    /// Guest RAM for the dummy domains.
    pub ram_bytes: u64,
    /// Saved crashes.
    pub corpus: Corpus,
}

impl Default for Campaign {
    fn default() -> Self {
        Self::new()
    }
}

impl Campaign {
    /// A campaign with small dummy VMs (the seeds carry the state; RAM
    /// only matters for guest-memory-dependent paths).
    #[must_use]
    pub fn new() -> Self {
        Self {
            ram_bytes: DEFAULT_RAM_BYTES,
            corpus: Corpus::new(),
        }
    }

    /// Run one test case against a recorded trace.
    ///
    /// The trace must be the recording of `testcase.workload`;
    /// `testcase.seed_index` selects `VM_seed_R` within it.
    pub fn run_test_case(&mut self, trace: &RecordedTrace, testcase: &TestCase) -> TestCaseResult {
        self.run_test_case_cov(trace, testcase).0
    }

    /// Like [`Campaign::run_test_case`], but also returns the coverage
    /// map the test case touched (baseline ∪ discovered). The parallel
    /// executor merges these word-wise into the campaign-wide map.
    pub fn run_test_case_cov(
        &mut self,
        trace: &RecordedTrace,
        testcase: &TestCase,
    ) -> (TestCaseResult, CoverageMap) {
        assert!(
            testcase.seed_index < trace.seeds.len(),
            "seed index beyond the trace"
        );
        let mut rng = SmallRng::seed_from_u64(testcase.rng_seed);
        let target = &trace.seeds[testcase.seed_index];

        // Reach s1 once and snapshot it; crash recovery restores the
        // snapshot in O(dirty state) instead of rebuilding the stack and
        // replaying the whole prefix again.
        let (mut hv, mut engine, s1) = self.reach_target_state(trace, testcase.seed_index);
        let baseline_outcome = engine.submit(&mut hv, target);
        let baseline_cov = baseline_outcome.metrics.coverage.clone();
        let baseline_lines = baseline_cov.lines();

        // The fuzzing sequence.
        let mut discovered = CoverageMap::new();
        let mut failures = FailureStats::default();
        for i in 0..testcase.mutants {
            let (mutant, applied) = mutate(target, testcase.area, &mut rng);
            let outcome = engine.submit(&mut hv, &mutant);
            failures.record(outcome.exit.crash.as_ref());
            for (b, l) in outcome.metrics.coverage.iter() {
                if !baseline_cov.contains(b) {
                    discovered.hit(b, l);
                }
            }
            if let Some(kind) = classify(outcome.exit.crash.as_ref(), &hv.log) {
                let console = hv
                    .log
                    .lines()
                    .last()
                    .map(|l| l.message.clone())
                    .unwrap_or_default();
                self.corpus.push(CrashRecord {
                    testcase: testcase.clone(),
                    mutant_index: i,
                    seed: mutant,
                    mutation: applied,
                    kind,
                    console,
                });
                // Reset to s1 (the paper's test-case restart after a
                // failure). A domain crash restores from the snapshot;
                // a hypervisor crash killed the whole stack, so only
                // then is it rebuilt from scratch.
                if hv.is_alive() {
                    s1.restore_into(&mut hv, engine.domain);
                } else {
                    let (h, e, _) = self.reach_target_state(trace, testcase.seed_index);
                    hv = h;
                    engine = e;
                }
                let _ = engine.submit(&mut hv, target);
            }
        }

        let new_lines = discovered.lines();
        let result = TestCaseResult {
            testcase: testcase.clone(),
            baseline_lines,
            new_lines,
            // One percent rule for the whole crate (failure.rs): a
            // zero-line baseline with discoveries is 100% new, not 0%.
            coverage_increase_percent: crate::failure::percent(new_lines, baseline_lines),
            failures,
        };
        let mut touched = baseline_cov;
        touched.merge(&discovered);
        (result, touched)
    }

    /// Build a fresh hypervisor + dummy VM, replay the trace prefix up
    /// to (excluding) `seed_index` — state `s1` of Fig. 11 — and capture
    /// a snapshot of `s1` for fast crash recovery.
    fn reach_target_state(
        &self,
        trace: &RecordedTrace,
        seed_index: usize,
    ) -> (Hypervisor, ReplayEngine, Snapshot) {
        let mut hv = Hypervisor::new();
        // Campaigns only consume Err/Crit console lines (the failure
        // classifier's grep); raising the threshold means info-level
        // messages on the submission loop are never even formatted.
        hv.log.set_min_level(Some(iris_hv::log::Level::Warning));
        let dummy = hv.create_hvm_domain(self.ram_bytes);
        // §VII-1: "Each test case starts from an initial VM state s0 of
        // W". For post-boot workloads s0 is the booted snapshot — the
        // dummy VM starts booted, like the paper reverts the test-VM
        // snapshot. OS BOOT traces boot themselves.
        if !trace.label.contains("BOOT") {
            iris_guest::runner::fast_forward_boot(&mut hv, dummy);
        }
        let mut engine = ReplayEngine::new(&mut hv, dummy);
        for seed in &trace.seeds[..seed_index] {
            let out = engine.submit(&mut hv, seed);
            debug_assert!(
                out.exit.crash.is_none(),
                "prefix replay must be clean: {:?}",
                out.exit.crash
            );
        }
        let s1 = Snapshot::take(&hv, dummy);
        (hv, engine, s1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::SeedArea;
    use crate::testcase::TestCase;
    use iris_core::record::Recorder;
    use iris_guest::workloads::Workload;
    use iris_vtx::exit::ExitReason;

    fn boot_trace(n: usize) -> RecordedTrace {
        let mut hv = Hypervisor::new();
        let dom = hv.create_hvm_domain(16 << 20);
        Recorder::new().record_workload(&mut hv, dom, "OS BOOT", Workload::OsBoot.generate(n, 42))
    }

    fn find_seed(trace: &RecordedTrace, reason: ExitReason) -> usize {
        trace
            .seeds
            .iter()
            .position(|s| s.reason == reason)
            .expect("reason present in trace")
    }

    #[test]
    fn vmcs_mutation_discovers_new_coverage_and_crashes() {
        let trace = boot_trace(120);
        let idx = find_seed(&trace, ExitReason::CrAccess);
        let mut campaign = Campaign::new();
        let tc = TestCase {
            mutants: 150,
            ..TestCase::new(
                Workload::OsBoot,
                idx,
                ExitReason::CrAccess,
                SeedArea::Vmcs,
                3,
            )
        };
        let r = campaign.run_test_case(&trace, &tc);
        assert!(r.baseline_lines > 0);
        assert!(r.new_lines > 0, "bit flips must open new paths");
        assert!(r.coverage_increase_percent > 0.0);
        // Flipping VMCS values (incl. the exit reason) produces crashes.
        assert!(
            r.failures.hv_crashes + r.failures.vm_crashes > 0,
            "{:?}",
            r.failures
        );
        assert_eq!(
            campaign.corpus.observed(),
            r.failures.hv_crashes + r.failures.vm_crashes
        );
        // 150 VMCS flips hammer a handful of mutation sites; dedup keeps
        // one reproducer per (kind, site, console) signature.
        let unique = campaign.corpus.unique();
        assert!(unique > 0);
        assert!(
            (unique as u64) < campaign.corpus.observed(),
            "a crashy site must not flood the corpus: {unique} unique of {}",
            campaign.corpus.observed()
        );
    }

    #[test]
    fn gpr_mutation_is_mostly_harmless() {
        let trace = boot_trace(120);
        let idx = find_seed(&trace, ExitReason::Cpuid);
        let mut campaign = Campaign::new();
        let tc = TestCase {
            mutants: 100,
            ..TestCase::new(Workload::OsBoot, idx, ExitReason::Cpuid, SeedArea::Gpr, 4)
        };
        let r = campaign.run_test_case(&trace, &tc);
        // The paper: "In all other cases, the hypervisor is not affected
        // by the mutation" (GPR mutations outside CR ACCESS).
        assert_eq!(r.failures.hv_crashes, 0);
        // But different CPUID leaves do reveal new leaf-handler coverage.
        assert!(r.new_lines > 0);
    }

    #[test]
    fn crash_recovery_restores_the_target_state() {
        let trace = boot_trace(60);
        let idx = find_seed(&trace, ExitReason::CrAccess);
        let mut campaign = Campaign::new();
        let tc = TestCase {
            mutants: 60,
            ..TestCase::new(
                Workload::OsBoot,
                idx,
                ExitReason::CrAccess,
                SeedArea::Vmcs,
                5,
            )
        };
        let r = campaign.run_test_case(&trace, &tc);
        // Even with crashes along the way, all mutants were submitted.
        assert_eq!(r.failures.submitted, 60);
    }
}
