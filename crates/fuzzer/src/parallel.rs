//! Parallel sharded campaign execution with sub-test-case work stealing.
//!
//! The paper's PoC fuzzer (§VII) submits test cases strictly
//! sequentially; [`crate::campaign::Campaign`] inherits that. A campaign
//! plan, however, is embarrassingly parallel — and since the per-range
//! RNG law ([`crate::mutation::mutant_rng`]) made the mutant stream
//! partition-invariant, so is every test case's mutant range.
//! [`ParallelCampaign`] therefore steals work at **chunk** granularity
//! ([`TestCase::chunks`], default [`crate::testcase::DEFAULT_CHUNK`]):
//! the plan is precomputed into a flat chunk list in
//! `(test_case_index, range_start)` order and handed to the shared
//! work-stealing executor ([`crate::executor`]) — N worker threads
//! claim chunks off an **atomic cursor** (one `fetch_add` per claim —
//! no lock on the hot path), each worker runs its chunk on a private
//! target stack ([`crate::campaign::run_mutant_range_with`] — boot to
//! `s1` once per chunk, snapshot-restore per crash), and the executor
//! delivers one [`ChunkOutput`] per chunk (not per seed) back in
//! chunk-index order. The aggregator therefore sees each test case's
//! chunks contiguously and in `range_start` order, assembles them
//! ([`crate::campaign::assemble_test_case`]) and folds completed test
//! cases into the report in **plan order** — coverage word-merged,
//! [`FailureStats`] folded, chunk-local [`Corpus`] shards absorbed by
//! move.
//!
//! Chunking is what keeps one huge-`M` cell (the paper's 10 000-mutant
//! test cases) from pinning a single worker while the rest of the pool
//! idles: wall-clock is bounded by total mutants, not by the largest
//! cell.
//!
//! When the factory enables the snapshot forest
//! ([`TargetFactory::forest`]), workers trade the per-chunk rebuild for
//! a **long-lived target per workload** (a prefix server): positioning
//! at a test case's seed prefix restores the deepest pinned
//! [`iris_core::forest::SnapshotForest`] node and replays only the
//! remaining seeds — O(delta) instead of O(prefix) — and crash recovery
//! inside a chunk restores the prefix node the same way. Pins are pure
//! accelerators (an evicted node is re-derived by replay), so the two
//! paths position targets in identical states.
//!
//! Determinism is a hard requirement: the mutant stream is a pure
//! function of `(rng_seed, mutant_index)`, chunk outputs merge in a
//! defined order, and folding is ordered by plan index — so the report
//! (results, merged coverage, folded stats, deduplicated corpus) is
//! byte-identical for **any** `(jobs, chunk)` combination and forest
//! configuration, and identical to a sequential
//! [`crate::campaign::Campaign`] loop over the same plan.

use crate::campaign::{
    assemble_test_case, run_mutant_range_on, run_mutant_range_with, run_test_case_with,
    ChunkOutput, TestCaseResult,
};
use crate::checkpoint::CampaignCheckpoint;
use crate::corpus::Corpus;
use crate::executor::{ExecutorError, RunPolicy};
use crate::failure::FailureStats;
use crate::target::{BootPlan, FuzzTarget, IrisHvTarget, TargetFactory};
use crate::testcase::{MutantRange, TestCase, DEFAULT_CHUNK};
use iris_core::forest::StateId;
use iris_core::trace::RecordedTrace;
use iris_guest::workloads::Workload;
use iris_hv::coverage::CoverageMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use crate::executor::available_jobs;

/// Aggregated outcome of a campaign plan — everything Table I needs,
/// plus the merged coverage and the deduplicated crash corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// One result per planned test case, in plan order.
    pub results: Vec<TestCaseResult>,
    /// Union of every test case's touched coverage (baseline ∪
    /// discovered), merged word-wise.
    pub coverage: CoverageMap,
    /// Folded failure counters over the whole plan.
    pub failures: FailureStats,
    /// Deduplicated crash corpus over the whole plan.
    pub corpus: Corpus,
}

impl CampaignReport {
    /// An empty report — the fold's starting state. Public so external
    /// aggregators (the `crates/dist` coordinator) can run the same
    /// fold the in-process driver runs.
    #[must_use]
    pub fn new() -> Self {
        Self {
            results: Vec::new(),
            coverage: CoverageMap::new(),
            failures: FailureStats::default(),
            corpus: Corpus::new(),
        }
    }

    /// Fold one assembled test case in. Must be called in plan order —
    /// the corpus dedup keeps the *first* record per signature, and plan
    /// order is what makes that choice schedule-independent. (The corpus
    /// itself is absorbed chunk-by-chunk in `self.corpus` by
    /// [`assemble_test_case`] before this runs.) Public for the same
    /// reason as [`CampaignReport::new`]: the distributed coordinator
    /// folds wire-delivered chunks through this exact path.
    pub fn fold_assembled(&mut self, result: TestCaseResult, coverage: &CoverageMap) {
        self.failures.merge(&result.failures);
        self.coverage.merge(coverage);
        self.results.push(result);
    }
}

impl Default for CampaignReport {
    fn default() -> Self {
        Self::new()
    }
}

/// Forest-mode worker state for one workload: a long-lived target plus
/// the pinned snapshot-forest node for each replayed seed-prefix
/// length. Kept for the worker's whole run, so successive chunks over
/// the same trace restore a pinned prefix instead of rebuilding the
/// stack and replaying from scratch.
struct PrefixServer<T> {
    /// The long-lived target (built with a prefix-0 plan, so the forest
    /// root is the trace's replay start state).
    target: T,
    /// `nodes[k]` pins the state after replaying `seeds[..k]`;
    /// `nodes[0]` is the forest root. Every entry is a pure
    /// accelerator: an evicted pin is a clean miss and the state is
    /// re-derived by replaying from the deepest surviving ancestor.
    nodes: Vec<Option<StateId>>,
}

impl<T: FuzzTarget> PrefixServer<T> {
    /// Boot a freshly built target into a server (the target must come
    /// from a prefix-0 plan, so the forest root is the state right
    /// before `seeds[0]`).
    fn new(mut target: T) -> PrefixServer<T> {
        target.boot();
        PrefixServer {
            target,
            nodes: vec![Some(StateId::ROOT)],
        }
    }

    /// Run one chunk: position at the test case's seed prefix (pinned
    /// node restore + remainder replay), then run the shared chunk core
    /// with a `restore_s1` that re-positions the same way after a
    /// crash. Byte-identical to [`run_mutant_range_with`], which boots
    /// a fresh target to the same state.
    fn run_chunk(
        &mut self,
        trace: &RecordedTrace,
        testcase: &TestCase,
        range: MutantRange,
    ) -> ChunkOutput {
        let Self { target, nodes } = self;
        position(target, nodes, trace, testcase.seed_index);
        run_mutant_range_on(
            target,
            &mut |t: &mut T| position(t, nodes, trace, testcase.seed_index),
            trace,
            testcase,
            range,
        )
    }
}

/// Put `target` in the state right before `trace.seeds[prefix]`:
/// restore the deepest surviving pinned ancestor and replay the rest,
/// pinning each step so later work (crash recovery within this chunk,
/// sibling test cases deeper in the same trace) restores in O(delta).
/// The positioned state is byte-identical to a fresh
/// [`BootPlan::for_test_case`] boot at `prefix` — a forest node's state
/// is a pure function of the replayed prefix.
///
/// # Panics
/// Panics if `prefix` is beyond the trace — a malformed plan, not a
/// runtime condition.
fn position<T: FuzzTarget>(
    target: &mut T,
    nodes: &mut Vec<Option<StateId>>,
    trace: &RecordedTrace,
    prefix: usize,
) {
    assert!(
        prefix < trace.seeds.len(),
        "seed prefix {prefix} beyond the trace's {} seeds",
        trace.seeds.len()
    );
    if nodes.len() <= prefix {
        nodes.resize(prefix + 1, None);
    }
    let mut from = prefix;
    loop {
        // lint:allow(panic-path-audit) -- nodes was resized to prefix+1 entries above and `from` only descends from prefix
        if let Some(id) = nodes[from] {
            if target.reset_to(id) {
                break;
            }
            // Evicted under cap pressure (or no forest at all on this
            // target): forget the stale pin and fall back one level.
            // lint:allow(panic-path-audit) -- same bound as the read above
            nodes[from] = None;
        }
        if from == 0 {
            // The root itself: a plain reset *is* the prefix-0 state.
            target.reset();
            break;
        }
        from -= 1;
    }
    for k in from..prefix {
        // lint:allow(panic-path-audit) -- k < prefix, asserted in range against trace.seeds above
        let out = target.submit(&trace.seeds[k]);
        debug_assert!(
            out.crash.is_none(),
            "prefix replay must be clean: {:?}",
            out.crash
        );
        if let Some(id) = target.pin_state() {
            // lint:allow(panic-path-audit) -- k + 1 <= prefix < nodes.len() after the resize above
            nodes[k + 1] = Some(id);
        }
    }
}

/// Progress snapshot handed to [`ParallelCampaign::run_observed`]'s
/// observer after every aggregated chunk — **mutant-granular**, so a
/// huge-`M` cell shows progress long before its test case completes.
#[derive(Debug, Clone, Copy)]
pub struct CampaignProgress {
    /// Mutants whose chunks have been aggregated so far.
    pub mutants_done: u64,
    /// Total mutants the plan submits.
    pub mutants_total: u64,
    /// Test cases fully assembled and folded into the report so far.
    pub results_folded: usize,
}

/// Options for [`ParallelCampaign::run_session`]: where to resume from
/// and how to react to worker panics and stop requests. The default is
/// a fresh, uninterruptible run under the executor's default restart
/// budget — exactly [`ParallelCampaign::run_observed`]'s behavior.
#[derive(Debug, Default)]
pub struct CampaignRunOptions<'a> {
    /// Executor fault policy: restart budget, cooperative stop flag,
    /// fault injection.
    pub policy: RunPolicy<'a>,
    /// Resume from a fold-boundary checkpoint (validate it with
    /// [`CampaignCheckpoint::load`] first — the engine only
    /// structurally cross-checks it against the plan).
    pub resume: Option<CampaignCheckpoint>,
}

/// A campaign executor that shards the planned test cases' mutant
/// ranges across worker threads at chunk granularity, generic over the
/// fuzz-target backend: every worker builds a private
/// [`crate::target::FuzzTarget`] instance per stolen chunk through the
/// shared factory.
#[derive(Debug, Clone, Copy)]
pub struct ParallelCampaign<F: TargetFactory = IrisHvTarget> {
    /// Worker thread count (≥ 1).
    pub jobs: usize,
    /// Mutants per work-stealing chunk (≥ 1); the report is
    /// byte-identical for every value, only the stealing granularity —
    /// and so the load balance — changes.
    pub chunk: usize,
    /// The backend factory workers build their instances from.
    pub factory: F,
}

impl Default for ParallelCampaign {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

impl ParallelCampaign {
    /// A stock-backend executor with an explicit worker count (clamped
    /// to ≥ 1) and the sequential campaign's dummy-VM sizing.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self::with_factory(jobs, IrisHvTarget::default())
    }

    /// An executor sized to the host: one worker per available core.
    #[must_use]
    pub fn with_available_parallelism() -> Self {
        Self::new(available_jobs())
    }
}

impl<F: TargetFactory> ParallelCampaign<F> {
    /// An executor over an explicit backend factory, stealing at the
    /// default chunk granularity ([`DEFAULT_CHUNK`]).
    #[must_use]
    pub fn with_factory(jobs: usize, factory: F) -> Self {
        Self {
            jobs: jobs.max(1),
            chunk: DEFAULT_CHUNK,
            factory,
        }
    }

    /// Override the work-stealing chunk size (clamped to ≥ 1).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Run a plan whose test cases may span several workloads; each test
    /// case runs against the trace recorded for its workload.
    ///
    /// # Panics
    /// Panics if a planned test case names a workload with no trace in
    /// `traces` — a malformed plan, not a runtime condition.
    #[must_use]
    pub fn run(
        &self,
        traces: &BTreeMap<Workload, RecordedTrace>,
        plan: &[TestCase],
    ) -> CampaignReport {
        self.run_observed(traces, plan, |_, _| {})
    }

    /// [`ParallelCampaign::run`] with an observer called on the
    /// aggregator thread after every aggregated chunk: drive progress
    /// lines (mutant-granular, so huge-`M` cells show movement) or
    /// persist corpus snapshots (`report.corpus` grows as test cases
    /// fold — pair with [`crate::corpus::CorpusWriter`] to keep the
    /// JSON I/O off this thread).
    ///
    /// # Panics
    /// Panics if a planned test case names a workload with no trace in
    /// `traces` — a malformed plan, not a runtime condition.
    #[must_use]
    pub fn run_observed<O>(
        &self,
        traces: &BTreeMap<Workload, RecordedTrace>,
        plan: &[TestCase],
        observe: O,
    ) -> CampaignReport
    where
        O: FnMut(CampaignProgress, &CampaignReport),
    {
        for tc in plan {
            assert!(
                traces.contains_key(&tc.workload),
                "plan references workload {:?} with no recorded trace",
                tc.workload
            );
        }
        match self.run_with(
            plan,
            // lint:allow(panic-path-audit) -- the loop above asserts every plan workload has a recorded trace
            |tc| &traces[&tc.workload],
            0,
            CampaignReport::new(),
            &RunPolicy::default(),
            observe,
        ) {
            Ok(report) => report,
            // The default policy carries no stop flag, so the only
            // reachable error is restart-budget exhaustion.
            // lint:allow(panic-path-audit) -- infallible wrapper by contract: the default policy carries no stop flag, so the only error is restart-budget exhaustion, a crash loop worth a panic
            Err(err) => panic!("campaign run failed: {err}"),
        }
    }

    /// The fault-tolerant form of [`ParallelCampaign::run_observed`]:
    /// resume from a fold-boundary checkpoint, absorb worker panics
    /// under an explicit restart budget, and honour a cooperative stop
    /// flag.
    ///
    /// Interruption semantics: when the stop flag trips, the test case
    /// being assembled is **discarded** (folding is all-or-nothing per
    /// test case) and the run returns `Ok` with the report over the
    /// folded plan prefix — `report.results.len() < plan.len()` then
    /// marks the run as partial, and a [`CampaignCheckpoint`] built
    /// from it resumes the remainder. A resumed run's final report is
    /// byte-identical to an uninterrupted one.
    ///
    /// # Errors
    /// [`ExecutorError::RestartBudgetExhausted`] when worker panics
    /// exceed the policy's budget.
    ///
    /// # Panics
    /// Panics on a malformed plan (a workload with no trace) or a
    /// checkpoint whose folded prefix does not match the plan —
    /// configuration errors, not runtime conditions.
    pub fn run_session<O>(
        &self,
        traces: &BTreeMap<Workload, RecordedTrace>,
        plan: &[TestCase],
        options: CampaignRunOptions<'_>,
        observe: O,
    ) -> Result<CampaignReport, ExecutorError>
    where
        O: FnMut(CampaignProgress, &CampaignReport),
    {
        for tc in plan {
            assert!(
                traces.contains_key(&tc.workload),
                "plan references workload {:?} with no recorded trace",
                tc.workload
            );
        }
        let (skip, report) = match options.resume {
            Some(cp) => {
                // The fingerprint was validated at load; cross-check
                // the structure against this plan: the checkpointed
                // results must be exactly the plan's folded prefix.
                assert!(
                    cp.folded <= plan.len() && cp.folded == cp.report.results.len(),
                    "campaign checkpoint is malformed: folded={} results={} plan={}",
                    cp.folded,
                    cp.report.results.len(),
                    plan.len()
                );
                for (tc, result) in plan.iter().zip(&cp.report.results) {
                    assert!(
                        *tc == result.testcase,
                        "campaign checkpoint does not match the plan prefix"
                    );
                }
                (cp.folded, cp.report)
            }
            None => (0, CampaignReport::new()),
        };
        self.run_with(
            plan,
            // lint:allow(panic-path-audit) -- run_resumable asserts every plan workload has a recorded trace before this call
            |tc| &traces[&tc.workload],
            skip,
            report,
            &options.policy,
            observe,
        )
    }

    /// Run a single-trace plan (every test case targets `trace`).
    #[must_use]
    pub fn run_trace(&self, trace: &RecordedTrace, plan: &[TestCase]) -> CampaignReport {
        match self.run_with(
            plan,
            |_| trace,
            0,
            CampaignReport::new(),
            &RunPolicy::default(),
            |_, _| {},
        ) {
            Ok(report) => report,
            // lint:allow(panic-path-audit) -- infallible wrapper by contract: the default policy carries no stop flag, so the only error is restart-budget exhaustion, a crash loop worth a panic
            Err(err) => panic!("campaign run failed: {err}"),
        }
    }

    /// The executor core: flatten `plan` into the precomputed chunk
    /// list, run it on the shared work-stealing executor
    /// ([`crate::executor::run_ordered`] — atomic-cursor claim,
    /// chunk-index-ordered delivery), and fold on this (aggregator)
    /// thread: because the chunk list is in `(test_case_index,
    /// range_start)` order and delivery follows it, each test case's
    /// chunks arrive contiguously and in `range_start` order, so a
    /// completed test case assembles and folds eagerly — its chunk
    /// outputs are dropped instead of accumulating for the whole plan.
    /// (Out-of-order completions park inside the executor, bounded by
    /// the out-of-order window, not the chunk-list length — each
    /// `ChunkOutput` carries two ~3.5 KB inline coverage maps.)
    fn run_with<'t, G, O>(
        &self,
        plan: &[TestCase],
        trace_of: G,
        skip: usize,
        mut report: CampaignReport,
        policy: &RunPolicy<'_>,
        mut observe: O,
    ) -> Result<CampaignReport, ExecutorError>
    where
        G: Fn(&TestCase) -> &'t RecordedTrace + Sync,
        O: FnMut(CampaignProgress, &CampaignReport),
    {
        // The chunk list is in (test_case_index, range_start) order, so
        // each test case's chunks occupy one contiguous span of job
        // indices. `skip` drops the test cases already folded into the
        // resumed `report`; mutant range RNG seeding depends only on
        // the test case itself, so the remainder runs identically.
        let jobs_list: Vec<(usize, MutantRange)> = plan
            .iter()
            .enumerate()
            .skip(skip)
            .flat_map(|(tc_idx, tc)| tc.chunks(self.chunk).map(move |r| (tc_idx, r)))
            .collect();
        let mut span = vec![0usize; plan.len()]; // chunk count per test case
        for &(tc_idx, _) in &jobs_list {
            // lint:allow(panic-path-audit) -- span has plan.len() entries and tc_idx comes from enumerate() over plan
            span[tc_idx] += 1;
        }
        let mutants_total: u64 = plan.iter().map(|tc| tc.mutants as u64).sum();

        let factory = &self.factory;
        let mut pending: Vec<ChunkOutput> = Vec::new();
        // lint:allow(panic-path-audit) -- skip is asserted <= plan.len() when the checkpoint is validated
        let mut mutants_done: u64 = plan[..skip].iter().map(|tc| tc.mutants as u64).sum();
        let mut sink = |job: usize, out: ChunkOutput| {
            mutants_done += out.range.len as u64;
            // lint:allow(panic-path-audit) -- job is an index run_ordered_with issues over jobs_list
            let tc_idx = jobs_list[job].0;
            pending.push(out);
            // lint:allow(panic-path-audit) -- span has plan.len() entries and tc_idx comes from enumerate() over plan
            if pending.len() == span[tc_idx] {
                let (result, coverage) =
                    // lint:allow(panic-path-audit) -- tc_idx comes from enumerate() over plan
                    assemble_test_case(&plan[tc_idx], pending.drain(..), &mut report.corpus);
                report.fold_assembled(result, &coverage);
            }
            observe(
                CampaignProgress {
                    mutants_done,
                    mutants_total,
                    results_folded: report.results.len(),
                },
                &report,
            );
        };
        let outcome = if factory.forest().is_some() {
            // Forest mode: persistent per-worker servers (one per
            // workload) position via pinned nodes instead of booting a
            // fresh stack per chunk. Byte-identical output either way —
            // the conformance suite holds the two paths against each
            // other.
            crate::executor::run_ordered_with(
                &jobs_list,
                self.jobs,
                policy,
                BTreeMap::new,
                |servers: &mut BTreeMap<Workload, PrefixServer<F::Target<'t>>>,
                 _,
                 &(tc_idx, range)| {
                    // lint:allow(panic-path-audit) -- tc_idx comes from enumerate() over plan
                    let tc = &plan[tc_idx];
                    let trace = trace_of(tc);
                    servers
                        .entry(tc.workload)
                        .or_insert_with(|| {
                            PrefixServer::new(factory.build(BootPlan::for_test_case(trace, 0)))
                        })
                        .run_chunk(trace, tc, range)
                },
                &mut sink,
            )
        } else {
            crate::executor::run_ordered_with(
                &jobs_list,
                self.jobs,
                policy,
                || (),
                |(), _, &(tc_idx, range)| {
                    // lint:allow(panic-path-audit) -- tc_idx comes from enumerate() over plan
                    let tc = &plan[tc_idx];
                    run_mutant_range_with(factory, trace_of(tc), tc, range)
                },
                &mut sink,
            )
        };
        match outcome {
            Ok(()) => Ok(report),
            // Folding is all-or-nothing per test case: the partial
            // chunk outputs of the test case in flight are discarded,
            // so the report covers exactly the folded plan prefix.
            Err(ExecutorError::Interrupted { .. }) => Ok(report),
            Err(err) => Err(err),
        }
    }

    /// The sequential reference: one shared corpus over the plan, in
    /// order — exactly what a pre-sharding driver did. The parallel path
    /// must produce a byte-identical report to this.
    #[must_use]
    pub fn run_sequential_with(
        factory: &F,
        traces: &BTreeMap<Workload, RecordedTrace>,
        plan: &[TestCase],
    ) -> CampaignReport {
        let mut report = CampaignReport::new();
        for tc in plan {
            // lint:allow(panic-path-audit) -- the sequential reference mirrors run_observed's contract: a plan workload without a trace is a caller bug worth a panic
            let trace = &traces[&tc.workload];
            let (result, coverage) = run_test_case_with(factory, &mut report.corpus, trace, tc);
            report.fold_assembled(result, &coverage);
        }
        report
    }
}

impl ParallelCampaign {
    /// [`ParallelCampaign::run_sequential_with`] on the stock backend
    /// with explicit dummy-VM sizing.
    #[must_use]
    pub fn run_sequential(
        traces: &BTreeMap<Workload, RecordedTrace>,
        plan: &[TestCase],
        ram_bytes: u64,
    ) -> CampaignReport {
        Self::run_sequential_with(&IrisHvTarget::with_ram(ram_bytes), traces, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::SeedArea;
    use crate::target::record_trace;
    use iris_vtx::exit::ExitReason;

    fn boot_trace(n: usize) -> RecordedTrace {
        record_trace(iris_guest::workloads::Workload::OsBoot, n, 42)
    }

    fn plan_over(trace: &RecordedTrace, mutants: usize) -> Vec<TestCase> {
        let mut plan = Vec::new();
        let mut seen = Vec::new();
        for (idx, seed) in trace.seeds.iter().enumerate() {
            if seen.contains(&seed.reason) {
                continue;
            }
            seen.push(seed.reason);
            for area in SeedArea::ALL {
                plan.push(TestCase {
                    mutants,
                    ..TestCase::new(
                        iris_guest::workloads::Workload::OsBoot,
                        idx,
                        seed.reason,
                        area,
                        0xC0FFEE ^ idx as u64,
                    )
                });
            }
        }
        plan
    }

    #[test]
    fn parallel_report_is_byte_identical_across_worker_counts() {
        let trace = boot_trace(150);
        let plan = plan_over(&trace, 40);
        assert!(plan.len() >= 6, "plan too small to shard meaningfully");
        let mut traces = BTreeMap::new();
        traces.insert(iris_guest::workloads::Workload::OsBoot, trace);

        let sequential =
            ParallelCampaign::run_sequential(&traces, &plan, crate::campaign::DEFAULT_RAM_BYTES);
        let baseline = serde_json::to_string(&sequential).unwrap();
        for jobs in [1usize, 2, 8] {
            let report = ParallelCampaign::new(jobs).run(&traces, &plan);
            assert_eq!(
                serde_json::to_string(&report).unwrap(),
                baseline,
                "jobs={jobs} diverged from the sequential reference"
            );
        }
    }

    #[test]
    fn report_is_byte_identical_across_jobs_and_chunk_sizes() {
        // The acceptance cross product: jobs × chunk, including chunk=1
        // (every mutant its own steal) and whole-cell chunks, against
        // the sequential reference. The plan keeps seed indices small so
        // the per-chunk boot prefix stays cheap.
        let trace = boot_trace(120);
        let mut plan = Vec::new();
        for (reason, area) in [
            (ExitReason::CrAccess, SeedArea::Vmcs), // crashy cell
            (ExitReason::Cpuid, SeedArea::Gpr),     // harmless cell
            (ExitReason::IoInstruction, SeedArea::Vmcs),
        ] {
            let idx = trace
                .seeds
                .iter()
                .position(|s| s.reason == reason)
                .expect("reason present in boot trace");
            plan.push(TestCase {
                mutants: 90,
                ..TestCase::new(
                    iris_guest::workloads::Workload::OsBoot,
                    idx,
                    reason,
                    area,
                    0xBEEF ^ idx as u64,
                )
            });
        }
        let mut traces = BTreeMap::new();
        traces.insert(iris_guest::workloads::Workload::OsBoot, trace);

        let sequential =
            ParallelCampaign::run_sequential(&traces, &plan, crate::campaign::DEFAULT_RAM_BYTES);
        let baseline = serde_json::to_string(&sequential).unwrap();
        assert!(
            sequential.corpus.observed() > 0,
            "the cross-product plan must exercise crash recovery"
        );
        for jobs in [1usize, 2, 8] {
            for chunk in [1usize, 64, usize::MAX] {
                let report = ParallelCampaign::new(jobs)
                    .with_chunk(chunk)
                    .run(&traces, &plan);
                assert_eq!(
                    serde_json::to_string(&report).unwrap(),
                    baseline,
                    "jobs={jobs} chunk={chunk} diverged from the sequential reference"
                );
            }
        }
    }

    #[test]
    fn forest_mode_report_is_byte_identical_to_forest_off() {
        use crate::target::{Backend, ConfiguredBackend};
        use iris_core::forest::ForestConfig;

        let trace = boot_trace(100);
        let plan = plan_over(&trace, 25);
        let mut traces = BTreeMap::new();
        traces.insert(iris_guest::workloads::Workload::OsBoot, trace);

        let plain = ParallelCampaign::with_factory(2, ConfiguredBackend::new(Backend::Iris))
            .run(&traces, &plan);
        let baseline = serde_json::to_string(&plain).unwrap();
        assert!(
            plain.corpus.observed() > 0,
            "the plan must exercise crash recovery"
        );
        // Tight node caps keep eviction pressure on: a stale pin must
        // be a clean miss (re-derived by replay), never a wrong state.
        for (jobs, cap) in [(1usize, ForestConfig::DEFAULT_CAP), (2, 3), (8, 1)] {
            let forest = ParallelCampaign::with_factory(
                jobs,
                ConfiguredBackend::new(Backend::Iris).with_forest(Some(ForestConfig { cap })),
            )
            .run(&traces, &plan);
            assert_eq!(
                serde_json::to_string(&forest).unwrap(),
                baseline,
                "forest jobs={jobs} cap={cap} diverged from the forest-off reference"
            );
        }
    }

    #[test]
    fn observer_sees_monotone_chunk_granular_progress() {
        let trace = boot_trace(100);
        let plan = plan_over(&trace, 30);
        let mut traces = BTreeMap::new();
        traces.insert(iris_guest::workloads::Workload::OsBoot, trace);
        let total: u64 = plan.iter().map(|tc| tc.mutants as u64).sum();

        let mut seen = Vec::new();
        let report =
            ParallelCampaign::new(2)
                .with_chunk(8)
                .run_observed(&traces, &plan, |p, partial| {
                    assert_eq!(p.mutants_total, total);
                    assert_eq!(p.results_folded, partial.results.len());
                    seen.push((p.mutants_done, p.results_folded));
                });
        assert!(!seen.is_empty(), "observer must fire per chunk");
        assert!(
            seen.windows(2).all(|w| w[0] <= w[1]),
            "progress must be monotone"
        );
        let &(last_mutants, last_folded) = seen.last().unwrap();
        assert_eq!(last_mutants, total, "every mutant reported");
        assert_eq!(last_folded, plan.len(), "every test case folded");
        assert!(
            seen.len() > plan.len(),
            "chunk granularity: more observations than test cases"
        );
        assert_eq!(report.results.len(), plan.len());
    }

    #[test]
    fn merged_coverage_matches_sequential_union() {
        let trace = boot_trace(120);
        let plan = plan_over(&trace, 25);
        let report = ParallelCampaign::new(4).run_trace(&trace, &plan);

        // Re-run sequentially, unioning per-test-case maps by hand.
        let mut campaign = crate::campaign::Campaign::new();
        let maps: Vec<CoverageMap> = plan
            .iter()
            .map(|tc| campaign.run_test_case_cov(&trace, tc).1)
            .collect();
        assert_eq!(report.coverage, CoverageMap::merged(maps.iter()));
        assert!(report.coverage.lines() > 0);
    }

    #[test]
    fn aggregated_stats_fold_every_test_case() {
        let trace = boot_trace(100);
        let plan = plan_over(&trace, 30);
        let report = ParallelCampaign::new(3).run_trace(&trace, &plan);
        assert_eq!(report.results.len(), plan.len());
        assert_eq!(
            report.failures.submitted,
            plan.iter().map(|tc| tc.mutants as u64).sum::<u64>()
        );
        assert_eq!(
            report.corpus.observed(),
            report.failures.vm_crashes + report.failures.hv_crashes,
            "every observed crash is counted"
        );
        assert!(report.corpus.unique() as u64 <= report.corpus.observed());
        // Results come back in plan order, not completion order.
        for (tc, r) in plan.iter().zip(&report.results) {
            assert_eq!(tc, &r.testcase);
        }
    }

    #[test]
    fn more_workers_than_work_is_fine() {
        let trace = boot_trace(80);
        let idx = trace
            .seeds
            .iter()
            .position(|s| s.reason == ExitReason::CrAccess)
            .expect("boot trace has CR accesses");
        let plan = vec![TestCase {
            mutants: 10,
            ..TestCase::new(
                iris_guest::workloads::Workload::OsBoot,
                idx,
                ExitReason::CrAccess,
                SeedArea::Vmcs,
                7,
            )
        }];
        let report = ParallelCampaign::new(64).run_trace(&trace, &plan);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.failures.submitted, 10);
    }

    #[test]
    fn empty_plan_yields_an_empty_report() {
        let trace = boot_trace(40);
        let report = ParallelCampaign::new(4).run_trace(&trace, &[]);
        assert!(report.results.is_empty());
        assert_eq!(report.failures, FailureStats::default());
        assert!(report.corpus.is_empty());
        assert_eq!(report.coverage, CoverageMap::new());
    }

    #[test]
    fn interrupted_campaign_resumes_byte_identically() {
        use crate::checkpoint::{CampaignCheckpoint, CHECKPOINT_VERSION};
        use std::sync::atomic::{AtomicBool, Ordering};

        let trace = boot_trace(100);
        let plan = plan_over(&trace, 20);
        assert!(plan.len() >= 6, "plan too small to interrupt meaningfully");
        let mut traces = BTreeMap::new();
        traces.insert(iris_guest::workloads::Workload::OsBoot, trace);

        let reference = ParallelCampaign::new(2).run(&traces, &plan);
        let baseline = serde_json::to_string(&reference).unwrap();

        // Trip the stop flag from the observer after the first fold;
        // with one worker the claim loop sees it before the plan runs
        // dry, so the partial report is a strict prefix.
        let stop = AtomicBool::new(false);
        let partial = ParallelCampaign::new(1)
            .run_session(
                &traces,
                &plan,
                CampaignRunOptions {
                    policy: RunPolicy {
                        stop: Some(&stop),
                        ..RunPolicy::default()
                    },
                    resume: None,
                },
                |p, _| {
                    if p.results_folded >= 1 {
                        stop.store(true, Ordering::Relaxed);
                    }
                },
            )
            .expect("interruption is not an error");
        assert!(
            !partial.results.is_empty() && partial.results.len() < plan.len(),
            "expected a strict prefix, folded {} of {}",
            partial.results.len(),
            plan.len()
        );

        let checkpoint = CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: String::from("test-fingerprint"),
            folded: partial.results.len(),
            report: partial,
        };
        let resumed = ParallelCampaign::new(2)
            .run_session(
                &traces,
                &plan,
                CampaignRunOptions {
                    policy: RunPolicy::default(),
                    resume: Some(checkpoint),
                },
                |_, _| {},
            )
            .expect("resumed run completes");
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            baseline,
            "interrupt + resume diverged from the uninterrupted reference"
        );
    }

    #[test]
    fn campaign_survives_injected_worker_panics_byte_identically() {
        use crate::executor::{quiet_injected_faults, FaultPlan};

        quiet_injected_faults();
        let trace = boot_trace(100);
        let plan = plan_over(&trace, 20);
        let mut traces = BTreeMap::new();
        traces.insert(iris_guest::workloads::Workload::OsBoot, trace);

        let reference = ParallelCampaign::new(2).with_chunk(8).run(&traces, &plan);
        let baseline = serde_json::to_string(&reference).unwrap();

        // Small chunks so the job list is long enough for faults in the
        // middle; each tripped index is re-leased and re-run clean.
        let faults = FaultPlan::new()
            .panic_once_at(1)
            .panic_once_at(5)
            .panic_once_at(9);
        let report = ParallelCampaign::new(2)
            .with_chunk(8)
            .run_session(
                &traces,
                &plan,
                CampaignRunOptions {
                    policy: RunPolicy {
                        faults: Some(&faults),
                        ..RunPolicy::default()
                    },
                    resume: None,
                },
                |_, _| {},
            )
            .expect("panics within budget are absorbed");
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            baseline,
            "injected worker panics changed the report"
        );
    }

    #[test]
    fn campaign_restart_budget_exhaustion_is_a_typed_error() {
        use crate::executor::{quiet_injected_faults, FaultPlan};

        quiet_injected_faults();
        let trace = boot_trace(80);
        let plan = plan_over(&trace, 10);
        let mut traces = BTreeMap::new();
        traces.insert(iris_guest::workloads::Workload::OsBoot, trace);

        let faults = FaultPlan::new().panic_always_at(0);
        let err = ParallelCampaign::new(2)
            .run_session(
                &traces,
                &plan,
                CampaignRunOptions {
                    policy: RunPolicy {
                        max_worker_restarts: Some(1),
                        faults: Some(&faults),
                        ..RunPolicy::default()
                    },
                    resume: None,
                },
                |_, _| {},
            )
            .expect_err("a persistent fault must exhaust the budget");
        match err {
            ExecutorError::RestartBudgetExhausted { budget, panics, .. } => {
                assert_eq!(budget, 1);
                assert!(panics > budget);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "no recorded trace")]
    fn malformed_plan_panics_up_front() {
        let traces = BTreeMap::new();
        let plan = vec![TestCase::new(
            iris_guest::workloads::Workload::Idle,
            0,
            ExitReason::Hlt,
            SeedArea::Gpr,
            1,
        )];
        let _ = ParallelCampaign::new(2).run(&traces, &plan);
    }
}
