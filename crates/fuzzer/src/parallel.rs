//! Parallel sharded campaign execution.
//!
//! The paper's PoC fuzzer (§VII) submits test cases strictly
//! sequentially; [`crate::campaign::Campaign`] inherits that. A campaign plan, however,
//! is embarrassingly parallel: every [`TestCase`] carries its own
//! `rng_seed` and rebuilds its own stack (hypervisor, dummy domain,
//! replay engine, `s1` snapshot), so test cases share *nothing* at run
//! time. [`ParallelCampaign`] exploits that: N worker threads pull test
//! cases from a shared work queue, each worker owning a private
//! `Hypervisor`/`ReplayEngine`/`Snapshot` per test case (reached once,
//! restored per crash — exactly the sequential path), and stream
//! per-test-case results to an aggregator over an `mpsc` channel. The
//! aggregator merges [`CoverageMap`]s word-wise, folds [`FailureStats`],
//! and absorbs per-worker [`Corpus`] shards in **plan order**.
//!
//! Determinism is a hard requirement: because each test case is
//! self-contained and aggregation is ordered by plan index, the report —
//! results, merged coverage, folded stats, deduplicated corpus — is
//! byte-identical for 1, 2, or 8 workers, and identical to a sequential
//! [`crate::campaign::Campaign`] loop over the same plan.

use crate::campaign::{run_test_case_with, TestCaseResult};
use crate::corpus::Corpus;
use crate::failure::FailureStats;
use crate::target::{IrisHvTarget, TargetFactory};
use crate::testcase::TestCase;
use iris_core::trace::RecordedTrace;
use iris_guest::workloads::Workload;
use iris_hv::coverage::CoverageMap;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Aggregated outcome of a campaign plan — everything Table I needs,
/// plus the merged coverage and the deduplicated crash corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// One result per planned test case, in plan order.
    pub results: Vec<TestCaseResult>,
    /// Union of every test case's touched coverage (baseline ∪
    /// discovered), merged word-wise.
    pub coverage: CoverageMap,
    /// Folded failure counters over the whole plan.
    pub failures: FailureStats,
    /// Deduplicated crash corpus over the whole plan.
    pub corpus: Corpus,
}

impl CampaignReport {
    fn new() -> Self {
        Self {
            results: Vec::new(),
            coverage: CoverageMap::new(),
            failures: FailureStats::default(),
            corpus: Corpus::new(),
        }
    }

    /// Fold one test case's outputs in. Must be called in plan order —
    /// the corpus dedup keeps the *first* record per signature, and plan
    /// order is what makes that choice worker-count-independent.
    fn fold(&mut self, result: TestCaseResult, coverage: &CoverageMap, corpus: Corpus) {
        self.failures.merge(&result.failures);
        self.coverage.merge(coverage);
        self.corpus.absorb(corpus);
        self.results.push(result);
    }
}

/// The worker-pool core shared by [`ParallelCampaign`] and
/// [`crate::guided::run_guided_parallel`]: shard `items` across at most
/// `jobs` worker threads pulling indices from a shared queue, stream
/// `(index, output)` pairs to the aggregating thread over an `mpsc`
/// channel as they finish, and return the outputs in **item order** —
/// the property every deterministic-aggregation guarantee above rests
/// on.
pub(crate) fn run_indexed<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.min(items.len()).max(1);
    let queue: Arc<Mutex<VecDeque<usize>>> = Arc::new(Mutex::new((0..items.len()).collect()));
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let tx = tx.clone();
            let work = &work;
            scope.spawn(move || loop {
                let Some(index) = queue.lock().expect("queue poisoned").pop_front() else {
                    break;
                };
                if tx.send((index, work(index, &items[index]))).is_err() {
                    break; // aggregator gone; nothing left to do
                }
            });
        }
        drop(tx);
        // Drain concurrently with the workers; indices slot arrivals
        // back into item order whatever the completion order was.
        for (index, r) in rx {
            out[index] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index was delivered"))
        .collect()
}

/// A campaign executor that shards the planned test cases across worker
/// threads, generic over the fuzz-target backend: every worker builds a
/// private [`crate::target::FuzzTarget`] instance per test case through
/// the shared factory.
#[derive(Debug, Clone, Copy)]
pub struct ParallelCampaign<F: TargetFactory = IrisHvTarget> {
    /// Worker thread count (≥ 1).
    pub jobs: usize,
    /// The backend factory workers build their instances from.
    pub factory: F,
}

impl Default for ParallelCampaign {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

impl ParallelCampaign {
    /// A stock-backend executor with an explicit worker count (clamped
    /// to ≥ 1) and the sequential campaign's dummy-VM sizing.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self::with_factory(jobs, IrisHvTarget::default())
    }

    /// An executor sized to the host: one worker per available core.
    #[must_use]
    pub fn with_available_parallelism() -> Self {
        Self::new(available_jobs())
    }
}

impl<F: TargetFactory> ParallelCampaign<F> {
    /// An executor over an explicit backend factory.
    #[must_use]
    pub fn with_factory(jobs: usize, factory: F) -> Self {
        Self {
            jobs: jobs.max(1),
            factory,
        }
    }

    /// Run a plan whose test cases may span several workloads; each test
    /// case runs against the trace recorded for its workload.
    ///
    /// # Panics
    /// Panics if a planned test case names a workload with no trace in
    /// `traces` — a malformed plan, not a runtime condition.
    #[must_use]
    pub fn run(
        &self,
        traces: &BTreeMap<Workload, RecordedTrace>,
        plan: &[TestCase],
    ) -> CampaignReport {
        for tc in plan {
            assert!(
                traces.contains_key(&tc.workload),
                "plan references workload {:?} with no recorded trace",
                tc.workload
            );
        }
        self.run_with(plan, |tc| &traces[&tc.workload])
    }

    /// Run a single-trace plan (every test case targets `trace`).
    #[must_use]
    pub fn run_trace(&self, trace: &RecordedTrace, plan: &[TestCase]) -> CampaignReport {
        self.run_with(plan, |_| trace)
    }

    /// The executor core: shard `plan` over `self.jobs` workers via
    /// [`run_indexed`], then fold the ordered outputs in plan order.
    fn run_with<'t, G>(&self, plan: &[TestCase], trace_of: G) -> CampaignReport
    where
        G: Fn(&TestCase) -> &'t RecordedTrace + Sync,
    {
        let factory = &self.factory;
        let outputs = run_indexed(plan, self.jobs, |_, tc| {
            // A fresh per-test-case run: the target boots the stack and
            // snapshots `s1` itself, so a worker-private corpus is the
            // only state to carry.
            let mut corpus = Corpus::new();
            let (result, coverage) = run_test_case_with(factory, &mut corpus, trace_of(tc), tc);
            (result, coverage, corpus)
        });
        let mut report = CampaignReport::new();
        for (result, coverage, corpus) in outputs {
            report.fold(result, &coverage, corpus);
        }
        report
    }

    /// The sequential reference: one shared corpus over the plan, in
    /// order — exactly what a pre-sharding driver did. The parallel path
    /// must produce a byte-identical report to this.
    #[must_use]
    pub fn run_sequential_with(
        factory: &F,
        traces: &BTreeMap<Workload, RecordedTrace>,
        plan: &[TestCase],
    ) -> CampaignReport {
        let mut corpus = Corpus::new();
        let mut report = CampaignReport::new();
        for tc in plan {
            let trace = &traces[&tc.workload];
            let (result, coverage) = run_test_case_with(factory, &mut corpus, trace, tc);
            report.failures.merge(&result.failures);
            report.coverage.merge(&coverage);
            report.results.push(result);
        }
        report.corpus = corpus;
        report
    }
}

impl ParallelCampaign {
    /// [`ParallelCampaign::run_sequential_with`] on the stock backend
    /// with explicit dummy-VM sizing.
    #[must_use]
    pub fn run_sequential(
        traces: &BTreeMap<Workload, RecordedTrace>,
        plan: &[TestCase],
        ram_bytes: u64,
    ) -> CampaignReport {
        Self::run_sequential_with(&IrisHvTarget::with_ram(ram_bytes), traces, plan)
    }
}

/// Worker count of the host (`std::thread::available_parallelism`),
/// falling back to 1 where the hint is unavailable.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::SeedArea;
    use crate::target::record_trace;
    use iris_vtx::exit::ExitReason;

    fn boot_trace(n: usize) -> RecordedTrace {
        record_trace(iris_guest::workloads::Workload::OsBoot, n, 42)
    }

    fn plan_over(trace: &RecordedTrace, mutants: usize) -> Vec<TestCase> {
        let mut plan = Vec::new();
        let mut seen = Vec::new();
        for (idx, seed) in trace.seeds.iter().enumerate() {
            if seen.contains(&seed.reason) {
                continue;
            }
            seen.push(seed.reason);
            for area in SeedArea::ALL {
                plan.push(TestCase {
                    mutants,
                    ..TestCase::new(
                        iris_guest::workloads::Workload::OsBoot,
                        idx,
                        seed.reason,
                        area,
                        0xC0FFEE ^ idx as u64,
                    )
                });
            }
        }
        plan
    }

    #[test]
    fn parallel_report_is_byte_identical_across_worker_counts() {
        let trace = boot_trace(150);
        let plan = plan_over(&trace, 40);
        assert!(plan.len() >= 6, "plan too small to shard meaningfully");
        let mut traces = BTreeMap::new();
        traces.insert(iris_guest::workloads::Workload::OsBoot, trace);

        let sequential =
            ParallelCampaign::run_sequential(&traces, &plan, crate::campaign::DEFAULT_RAM_BYTES);
        let baseline = serde_json::to_string(&sequential).unwrap();
        for jobs in [1usize, 2, 8] {
            let report = ParallelCampaign::new(jobs).run(&traces, &plan);
            assert_eq!(
                serde_json::to_string(&report).unwrap(),
                baseline,
                "jobs={jobs} diverged from the sequential reference"
            );
        }
    }

    #[test]
    fn merged_coverage_matches_sequential_union() {
        let trace = boot_trace(120);
        let plan = plan_over(&trace, 25);
        let report = ParallelCampaign::new(4).run_trace(&trace, &plan);

        // Re-run sequentially, unioning per-test-case maps by hand.
        let mut campaign = crate::campaign::Campaign::new();
        let maps: Vec<CoverageMap> = plan
            .iter()
            .map(|tc| campaign.run_test_case_cov(&trace, tc).1)
            .collect();
        assert_eq!(report.coverage, CoverageMap::merged(maps.iter()));
        assert!(report.coverage.lines() > 0);
    }

    #[test]
    fn aggregated_stats_fold_every_test_case() {
        let trace = boot_trace(100);
        let plan = plan_over(&trace, 30);
        let report = ParallelCampaign::new(3).run_trace(&trace, &plan);
        assert_eq!(report.results.len(), plan.len());
        assert_eq!(
            report.failures.submitted,
            plan.iter().map(|tc| tc.mutants as u64).sum::<u64>()
        );
        assert_eq!(
            report.corpus.observed(),
            report.failures.vm_crashes + report.failures.hv_crashes,
            "every observed crash is counted"
        );
        assert!(report.corpus.unique() as u64 <= report.corpus.observed());
        // Results come back in plan order, not completion order.
        for (tc, r) in plan.iter().zip(&report.results) {
            assert_eq!(tc, &r.testcase);
        }
    }

    #[test]
    fn more_workers_than_work_is_fine() {
        let trace = boot_trace(80);
        let idx = trace
            .seeds
            .iter()
            .position(|s| s.reason == ExitReason::CrAccess)
            .expect("boot trace has CR accesses");
        let plan = vec![TestCase {
            mutants: 10,
            ..TestCase::new(
                iris_guest::workloads::Workload::OsBoot,
                idx,
                ExitReason::CrAccess,
                SeedArea::Vmcs,
                7,
            )
        }];
        let report = ParallelCampaign::new(64).run_trace(&trace, &plan);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.failures.submitted, 10);
    }

    #[test]
    fn empty_plan_yields_an_empty_report() {
        let trace = boot_trace(40);
        let report = ParallelCampaign::new(4).run_trace(&trace, &[]);
        assert!(report.results.is_empty());
        assert_eq!(report.failures, FailureStats::default());
        assert!(report.corpus.is_empty());
        assert_eq!(report.coverage, CoverageMap::new());
    }

    #[test]
    #[should_panic(expected = "no recorded trace")]
    fn malformed_plan_panics_up_front() {
        let traces = BTreeMap::new();
        let plan = vec![TestCase::new(
            iris_guest::workloads::Workload::Idle,
            0,
            ExitReason::Hlt,
            SeedArea::Gpr,
            1,
        )];
        let _ = ParallelCampaign::new(2).run(&traces, &plan);
    }
}
