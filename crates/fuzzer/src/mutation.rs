//! Mutation rules (§VII-2).
//!
//! The PoC fuzzer's rule is deliberately naive: *"a single bit-flip in
//! the VM seed area. Specifically, the fuzzer randomly selects a VMCS
//! field or a general-purpose register and then bit-flips the value."*

use iris_core::seed::VmSeed;
use iris_vtx::gpr::Gpr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which area of the seed to mutate (the paper's `A = {VMCS, GPR}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeedArea {
    /// The VMCS `{field, value}` read pairs.
    Vmcs,
    /// The general-purpose register block.
    Gpr,
}

impl SeedArea {
    /// Both areas, in the paper's column order.
    pub const ALL: [SeedArea; 2] = [SeedArea::Vmcs, SeedArea::Gpr];

    /// Table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SeedArea::Vmcs => "VMCS",
            SeedArea::Gpr => "GPR",
        }
    }
}

/// A concrete mutation that was applied (for crash reproduction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppliedMutation {
    /// Bit `bit` of the value of VMCS read pair `index` was flipped.
    VmcsBitFlip {
        /// Index into `seed.reads`.
        index: usize,
        /// Flipped bit position.
        bit: u8,
    },
    /// Bit `bit` of GPR `gpr` was flipped.
    GprBitFlip {
        /// The register.
        gpr: Gpr,
        /// Flipped bit position.
        bit: u8,
    },
}

/// The campaign's per-range RNG law: mutant `index` of a test case draws
/// its randomness from a [`SmallRng`] seeded with `rng_seed ⊕ index`.
///
/// Because the stream is re-derived per mutant index — a chunk starting
/// at `range_start` seeds its first mutant from `rng_seed ⊕ range_start`
/// and advances the index as it goes — the mutant sequence of a range
/// `[start, end)` is the concatenation of the per-index streams, so
/// **any** partition of `0..mutants` into chunks generates exactly the
/// same mutants as the unchunked run. That invariance is what lets the
/// sharded executor steal work at sub-test-case granularity while the
/// campaign report stays byte-identical for every `(jobs, chunk)`
/// combination (asserted by `chunked_partition_matches_unchunked` in
/// `tests/proptest_invariants.rs`).
///
/// The guided engine extends the same law to **slot indices**: slot `g`
/// of a shared-corpus run draws from `mutant_rng(rng_seed, g)` (see
/// [`crate::strategies::scheduled_mutant`]), which is what makes the
/// generational batch partition-invariant over workers too.
///
/// `SmallRng` is xoshiro256++ seeded through SplitMix64 expansion, so
/// adjacent indices yield decorrelated streams.
#[must_use]
pub fn mutant_rng(rng_seed: u64, mutant_index: u64) -> SmallRng {
    SmallRng::seed_from_u64(rng_seed ^ mutant_index)
}

/// Apply one single-bit-flip mutation to a copy of `seed`, in `area`.
/// Returns the mutant and a description of what changed. Returns the
/// seed unchanged (with no mutation) only when the area is empty.
pub fn mutate<R: Rng>(
    seed: &VmSeed,
    area: SeedArea,
    rng: &mut R,
) -> (VmSeed, Option<AppliedMutation>) {
    let mut mutant = seed.clone();
    match area {
        SeedArea::Vmcs => {
            if mutant.reads.is_empty() {
                return (mutant, None);
            }
            let index = rng.gen_range(0..mutant.reads.len());
            let bit = rng.gen_range(0..64u8);
            mutant.reads[index].1 ^= 1u64 << bit;
            (mutant, Some(AppliedMutation::VmcsBitFlip { index, bit }))
        }
        SeedArea::Gpr => {
            let gpr = Gpr::ALL[rng.gen_range(0..Gpr::COUNT)];
            let bit = rng.gen_range(0..64u8);
            let v = mutant.gprs.get(gpr) ^ (1u64 << bit);
            mutant.gprs.set(gpr, v);
            (mutant, Some(AppliedMutation::GprBitFlip { gpr, bit }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_vtx::exit::ExitReason;
    use iris_vtx::fields::VmcsField;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seed() -> VmSeed {
        let mut s = VmSeed::new(ExitReason::CrAccess);
        s.push_read(VmcsField::VmExitReason, 28);
        s.push_read(VmcsField::ExitQualification, 0x10);
        s.gprs.set(Gpr::Rax, 0x31);
        s
    }

    #[test]
    fn vmcs_mutation_flips_exactly_one_bit() {
        let s = seed();
        let mut rng = SmallRng::seed_from_u64(1);
        let (m, applied) = mutate(&s, SeedArea::Vmcs, &mut rng);
        let Some(AppliedMutation::VmcsBitFlip { index, bit }) = applied else {
            panic!("expected a VMCS flip");
        };
        assert_eq!(m.reads[index].1 ^ s.reads[index].1, 1u64 << bit);
        assert_eq!(m.gprs, s.gprs, "GPRs untouched");
    }

    #[test]
    fn gpr_mutation_leaves_vmcs_alone() {
        let s = seed();
        let mut rng = SmallRng::seed_from_u64(2);
        let (m, applied) = mutate(&s, SeedArea::Gpr, &mut rng);
        assert!(matches!(applied, Some(AppliedMutation::GprBitFlip { .. })));
        assert_eq!(m.reads, s.reads);
        assert_ne!(m.gprs, s.gprs);
    }

    #[test]
    fn empty_vmcs_area_yields_no_mutation() {
        let s = VmSeed::new(ExitReason::Rdtsc);
        let mut rng = SmallRng::seed_from_u64(3);
        let (m, applied) = mutate(&s, SeedArea::Vmcs, &mut rng);
        assert_eq!(applied, None);
        assert_eq!(m, s);
    }

    #[test]
    fn deterministic_under_seeded_rng() {
        let s = seed();
        let a = mutate(&s, SeedArea::Vmcs, &mut SmallRng::seed_from_u64(9));
        let b = mutate(&s, SeedArea::Vmcs, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn mutant_rng_is_a_pure_function_of_seed_and_index() {
        let s = seed();
        for index in [0u64, 1, 255, 256, u64::MAX] {
            let a = mutate(&s, SeedArea::Vmcs, &mut mutant_rng(9, index));
            let b = mutate(&s, SeedArea::Vmcs, &mut mutant_rng(9, index));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mutant_rng_decorrelates_adjacent_indices() {
        let s = seed();
        // Adjacent indices must not all produce the same mutation (the
        // law XORs low bits; SplitMix64 expansion decorrelates them).
        let mutations: Vec<_> = (0..16u64)
            .map(|i| mutate(&s, SeedArea::Vmcs, &mut mutant_rng(42, i)).1)
            .collect();
        let first = &mutations[0];
        assert!(
            mutations.iter().any(|m| m != first),
            "16 adjacent indices all produced {first:?}"
        );
    }
}
