//! The pluggable fuzz-target API.
//!
//! The paper's core claim is that record/replay fuzzing is
//! *hypervisor-agnostic*: the vmread/vmwrite interposition surface (§V-A)
//! is the only contract between the fuzzer and the system under test.
//! [`FuzzTarget`] is that contract as a trait — it owns the whole SUT
//! lifecycle the campaign drivers used to hand-roll:
//!
//! * [`FuzzTarget::boot`] — bring the SUT up and reach the fuzzing start
//!   state `s1` of Fig. 11 (build the stack, optionally fast-forward the
//!   dummy VM's boot, replay the seed prefix, snapshot `s1`);
//! * [`FuzzTarget::submit`] — submit one VM seed and report what happened
//!   (coverage touched, crash verdict, cycle cost);
//! * [`FuzzTarget::reset`] — restore `s1` (snapshot restore in O(dirty
//!   state); a full reboot only if the SUT itself died).
//!
//! A [`TargetFactory`] builds private target instances, one per worker
//! and test case, which is what lets [`crate::parallel::ParallelCampaign`]
//! keep its byte-identical jobs=1/2/8 determinism guarantee: every test
//! case runs on a fresh, self-contained instance whatever thread it lands
//! on.
//!
//! Drivers are **generic** over the factory, so the per-exit hot path is
//! statically dispatched — the trait adds no per-exit cost over calling
//! the replay engine directly (see PERFORMANCE.md and the `target` arm of
//! the `replay_throughput` bench).
//!
//! Two backends ship in-tree, enumerated by [`Backend`]:
//!
//! * [`IrisHvTarget`] — the stock hypervisor model;
//! * [`FaultyHvTarget`] — the same hypervisor built with
//!   [`FaultInjection::planted`] defects, giving Table I campaigns a
//!   ground truth: [`detect_planted_faults`] states exactly which known
//!   bugs a crash corpus found.

use crate::corpus::{Corpus, CrashRecord};
use crate::failure::{classify, FailureKind};
use iris_core::forest::{ForestConfig, SnapshotForest, StateId};
use iris_core::record::Recorder;
use iris_core::replay::ReplayEngine;
use iris_core::seed::VmSeed;
use iris_core::snapshot::Snapshot;
use iris_core::trace::RecordedTrace;
use iris_guest::runner::fast_forward_boot;
use iris_guest::workloads::Workload;
use iris_hv::coverage::CoverageMap;
use iris_hv::faults::{FaultInjection, PlantedFault};
use iris_hv::hypervisor::Hypervisor;
use iris_hv::log::Level;

/// How a target reaches the fuzzing start state `s1`: which recorded
/// trace to replay, how much of it, and whether the dummy VM boots first.
#[derive(Debug, Clone, Copy)]
pub struct BootPlan<'t> {
    /// The recorded trace the prefix comes from.
    pub trace: &'t RecordedTrace,
    /// Seeds `trace.seeds[..prefix]` are replayed after bring-up; `s1` is
    /// the state right before seed `prefix`.
    pub prefix: usize,
    /// Fast-forward the dummy VM's boot before replaying. Campaigns set
    /// this for post-boot workload traces (§VII-1: `s0` is the booted
    /// snapshot); OS BOOT traces boot themselves.
    pub fast_forward: bool,
}

impl<'t> BootPlan<'t> {
    /// The campaign plan for one test case: replay up to (excluding)
    /// `seed_index`, booting first unless the trace is itself a boot.
    ///
    /// # Panics
    /// Panics if `seed_index` is beyond the trace.
    #[must_use]
    pub fn for_test_case(trace: &'t RecordedTrace, seed_index: usize) -> Self {
        assert!(
            seed_index < trace.seeds.len(),
            "seed index beyond the trace"
        );
        Self {
            trace,
            prefix: seed_index,
            fast_forward: !trace.label.contains("BOOT"),
        }
    }

    /// The guided-loop plan: a booted SUT with no replay prefix (`s1` is
    /// the post-boot snapshot).
    #[must_use]
    pub fn post_boot(trace: &'t RecordedTrace) -> Self {
        Self {
            trace,
            prefix: 0,
            fast_forward: true,
        }
    }
}

/// The crash half of a submission verdict. Serializable so distributed
/// workers can ship slot/chunk outcomes over the wire (`crates/dist`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CrashVerdict {
    /// VM crash or hypervisor crash (the paper's §VII-3 taxonomy).
    pub kind: FailureKind,
    /// The console line the crash left — the corpus dedup signature
    /// component the paper's log-grepping scripts read.
    pub console: String,
}

/// What one [`FuzzTarget::submit`] produced.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Coverage the submission touched (framework hits stripped, the
    /// paper's "cleaned up" bitmap).
    pub coverage: CoverageMap,
    /// Crash verdict, if the submission crashed the VM or the SUT.
    pub crash: Option<CrashVerdict>,
    /// Virtual cycles the exit→entry round trip cost.
    pub cycles: u64,
}

/// A system under test that accepts replayed VM seeds.
///
/// The contract every backend must honour (checked by the conformance
/// suite in `tests/target_conformance.rs` for all [`Backend`]s):
///
/// * `boot` is deterministic: two instances built from the same plan are
///   indistinguishable through `submit`;
/// * `reset` restores `s1` exactly — submitting the same seed after a
///   reset reproduces the pre-reset outcome;
/// * submission coverage is reproducible: the same seed from the same
///   state touches the same blocks.
pub trait FuzzTarget {
    /// Bring the SUT up and reach `s1` per the boot plan. Calling it
    /// again performs a full rebuild (the hypervisor-crash recovery
    /// path).
    fn boot(&mut self);

    /// Submit one VM seed through the replay interposition surface.
    ///
    /// # Panics
    /// Panics if the target was never booted.
    fn submit(&mut self, seed: &VmSeed) -> SubmitOutcome;

    /// Restore `s1`: a snapshot restore when the SUT survives, a full
    /// reboot when the previous submission was SUT-fatal.
    ///
    /// # Panics
    /// Panics if the target was never booted.
    fn reset(&mut self);

    /// Pin the current state as a snapshot-forest node and return its
    /// id, so a later [`FuzzTarget::reset_to`] can come back to it in
    /// O(delta) instead of O(prefix) replay. `None` when the target has
    /// no forest (the default — forest support is opt-in per backend).
    ///
    /// Drivers must treat pinned nodes as a **pure accelerator**: a
    /// node's state is by construction the state reached by replaying
    /// its seed path from `s1`, so any pin may be dropped (eviction)
    /// and re-derived without changing results.
    fn pin_state(&mut self) -> Option<StateId> {
        None
    }

    /// Restore a previously pinned state in place. Returns `false` —
    /// leaving the target untouched — when the target has no forest or
    /// the node was evicted; the caller then re-derives the state via
    /// [`FuzzTarget::reset`] + seed replay (slower, never wrong). A
    /// SUT-fatal crash is recovered with a full reboot first, like
    /// [`FuzzTarget::reset`]. This seam is what lets a future
    /// `RemoteTarget` adopt the forest protocol without new driver
    /// code.
    fn reset_to(&mut self, _id: StateId) -> bool {
        false
    }
}

/// Builds private [`FuzzTarget`] instances — the seam the sharded
/// executor fans out over (`Send + Sync` so worker threads can share the
/// factory by reference).
pub trait TargetFactory: Send + Sync {
    /// The target type this factory builds; borrows the plan's trace.
    type Target<'t>: FuzzTarget + 't;

    /// Build an instance for one boot plan. The instance is not yet
    /// booted — drivers call [`FuzzTarget::boot`] explicitly.
    fn build<'t>(&self, plan: BootPlan<'t>) -> Self::Target<'t>;

    /// The backend's registry name (what `--target` selects).
    fn name(&self) -> &'static str;

    /// One-line description for the `targets` listing.
    fn description(&self) -> &'static str;

    /// The snapshot-forest configuration instances built by this
    /// factory enable (`None` = forest off, the default). Drivers use
    /// this to decide whether persistent per-worker targets with pinned
    /// states are worth keeping; either way reports must stay
    /// byte-identical, because the forest is a pure accelerator.
    fn forest(&self) -> Option<ForestConfig> {
        None
    }
}

/// How a booted [`HvTarget`] gets back to `s1`: one flat snapshot, or a
/// copy-on-write forest rooted there (when [`TargetFactory::forest`] is
/// configured).
enum ResetState {
    /// Classic single-snapshot restore.
    Snapshot(Snapshot),
    /// Snapshot forest: `s1` is the root; [`FuzzTarget::pin_state`] /
    /// [`FuzzTarget::reset_to`] are live.
    Forest(SnapshotForest),
}

struct HvStack {
    hv: Hypervisor,
    engine: ReplayEngine,
    reset: ResetState,
}

/// A fuzz target over the in-tree hypervisor model: a dummy VM driven by
/// the [`ReplayEngine`], with `s1` captured as a [`Snapshot`] for O(dirty
/// state) resets. Both in-tree factories build this type; they differ
/// only in the [`FaultInjection`] configuration baked into the build.
pub struct HvTarget<'t> {
    plan: BootPlan<'t>,
    ram_bytes: u64,
    faults: FaultInjection,
    forest_cfg: Option<ForestConfig>,
    state: Option<HvStack>,
}

impl std::fmt::Debug for HvTarget<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HvTarget")
            .field("trace", &self.plan.trace.label)
            .field("prefix", &self.plan.prefix)
            .field("ram_bytes", &self.ram_bytes)
            .field("faults", &self.faults)
            .field("forest", &self.forest_cfg)
            .field("booted", &self.state.is_some())
            .finish()
    }
}

impl FuzzTarget for HvTarget<'_> {
    fn boot(&mut self) {
        // A reboot in forest mode salvages the forest: boot is
        // deterministic, so the freshly built stack *is* the root state
        // and every pinned node stays restorable (the determinism law —
        // a node is a pure function of `(trace, prefix, seed path)`).
        let prior_forest = match self.state.take() {
            Some(HvStack {
                reset: ResetState::Forest(forest),
                ..
            }) => Some(forest),
            _ => None,
        };
        let mut hv = Hypervisor::new();
        hv.faults = self.faults;
        // Campaign drivers only consume Err/Crit console lines (the
        // failure classifier's grep); the threshold keeps info-level
        // messages on the submission loop from even being formatted.
        hv.log.set_min_level(Some(Level::Warning));
        let dummy = hv.create_hvm_domain(self.ram_bytes);
        if self.plan.fast_forward {
            fast_forward_boot(&mut hv, dummy);
        }
        let mut engine = ReplayEngine::new(&mut hv, dummy);
        for seed in &self.plan.trace.seeds[..self.plan.prefix] {
            let out = engine.submit(&mut hv, seed);
            debug_assert!(
                out.exit.crash.is_none(),
                "prefix replay must be clean: {:?}",
                out.exit.crash
            );
        }
        let reset = match (self.forest_cfg, prior_forest) {
            (Some(_), Some(mut forest)) => {
                forest.rebooted();
                hv.domains[dummy as usize]
                    .memory
                    .set_page_dirty_tracking(true);
                ResetState::Forest(forest)
            }
            (Some(cfg), None) => match SnapshotForest::new(&hv, dummy, cfg) {
                Some(forest) => {
                    // Tracking starts *after* the root capture so the
                    // dirty set measures divergence from `s1`.
                    hv.domains[dummy as usize]
                        .memory
                        .set_page_dirty_tracking(true);
                    ResetState::Forest(forest)
                }
                None => ResetState::Snapshot(Snapshot::take(&hv, dummy)),
            },
            (None, _) => ResetState::Snapshot(Snapshot::take(&hv, dummy)),
        };
        self.state = Some(HvStack { hv, engine, reset });
    }

    // Inlined so the per-submission `SubmitOutcome` move (the coverage
    // map is a ~3.5 KB value type) can be elided into the caller's slot
    // across the crate boundary — see the `direct` vs `target` arms of
    // the `replay_throughput` bench.
    #[inline]
    fn submit(&mut self, seed: &VmSeed) -> SubmitOutcome {
        let st = self.state.as_mut().expect("boot() the target first");
        let out = st.engine.submit(&mut st.hv, seed);
        let crash = classify(out.exit.crash.as_ref(), &st.hv.log).map(|kind| CrashVerdict {
            kind,
            console: st
                .hv
                .log
                .lines()
                .last()
                .map(|l| l.message.clone())
                .unwrap_or_default(),
        });
        SubmitOutcome {
            coverage: out.metrics.coverage,
            crash,
            cycles: out.exit.cycles,
        }
    }

    fn reset(&mut self) {
        let st = self.state.as_mut().expect("boot() the target first");
        if st.hv.is_alive() {
            // A domain crash (or a clean state) restores from the
            // snapshot in O(dirty state) — or, in forest mode, walks
            // back to the root in O(delta).
            match &mut st.reset {
                ResetState::Snapshot(s1) => s1.restore_into(&mut st.hv, st.engine.domain),
                ResetState::Forest(forest) => {
                    let ok = forest.restore_to(&mut st.hv, st.engine.domain, StateId::ROOT);
                    debug_assert!(ok, "the forest root is never evicted");
                }
            }
        } else {
            // A hypervisor crash killed the whole stack; rebuild it.
            self.boot();
        }
    }

    fn pin_state(&mut self) -> Option<StateId> {
        let st = self.state.as_mut().expect("boot() the target first");
        match &mut st.reset {
            ResetState::Snapshot(_) => None,
            ResetState::Forest(forest) => {
                let id = forest.take_delta(&mut st.hv, st.engine.domain);
                forest.evict_excess(&[id]);
                Some(id)
            }
        }
    }

    fn reset_to(&mut self, id: StateId) -> bool {
        if self.forest_cfg.is_none() {
            return false;
        }
        let st = self.state.as_mut().expect("boot() the target first");
        if !st.hv.is_alive() {
            // SUT-fatal crash: rebuild the stack (which salvages the
            // forest), then restore the pinned node from the root.
            self.boot();
        }
        let st = self.state.as_mut().expect("boot() the target first");
        match &mut st.reset {
            ResetState::Snapshot(_) => false,
            ResetState::Forest(forest) => forest.restore_to(&mut st.hv, st.engine.domain, id),
        }
    }
}

/// Factory for the stock hypervisor backend (registry name `iris`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrisHvTarget {
    /// Guest RAM for the dummy domain.
    pub ram_bytes: u64,
}

impl Default for IrisHvTarget {
    fn default() -> Self {
        Self::with_ram(crate::campaign::DEFAULT_RAM_BYTES)
    }
}

impl IrisHvTarget {
    /// A factory with explicit dummy-VM sizing.
    #[must_use]
    pub fn with_ram(ram_bytes: u64) -> Self {
        Self { ram_bytes }
    }
}

/// The shared constructor both in-tree factories (and [`Backend`]) use:
/// an un-booted [`HvTarget`] over the given plan, sizing, and fault
/// configuration.
fn build_hv_target(plan: BootPlan<'_>, ram_bytes: u64, faults: FaultInjection) -> HvTarget<'_> {
    HvTarget {
        plan,
        ram_bytes,
        faults,
        forest_cfg: None,
        state: None,
    }
}

impl TargetFactory for IrisHvTarget {
    type Target<'t> = HvTarget<'t>;

    fn build<'t>(&self, plan: BootPlan<'t>) -> HvTarget<'t> {
        build_hv_target(plan, self.ram_bytes, FaultInjection::NONE)
    }

    fn name(&self) -> &'static str {
        "iris"
    }

    fn description(&self) -> &'static str {
        "stock hypervisor model (the paper's SUT)"
    }
}

/// Factory for the fault-injection backend (registry name `faulty`):
/// the same hypervisor with [`FaultInjection::planted`] defects, so
/// campaigns have known bugs to detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyHvTarget {
    /// Guest RAM for the dummy domain.
    pub ram_bytes: u64,
}

impl Default for FaultyHvTarget {
    fn default() -> Self {
        Self::with_ram(crate::campaign::DEFAULT_RAM_BYTES)
    }
}

impl FaultyHvTarget {
    /// A factory with explicit dummy-VM sizing.
    #[must_use]
    pub fn with_ram(ram_bytes: u64) -> Self {
        Self { ram_bytes }
    }
}

impl TargetFactory for FaultyHvTarget {
    type Target<'t> = HvTarget<'t>;

    fn build<'t>(&self, plan: BootPlan<'t>) -> HvTarget<'t> {
        build_hv_target(plan, self.ram_bytes, FaultInjection::planted())
    }

    fn name(&self) -> &'static str {
        "faulty"
    }

    fn description(&self) -> &'static str {
        "fault-injection build with planted handler bugs (ground-truth detection)"
    }
}

/// The registered backends, selectable by name (`--target`).
///
/// `Backend` itself implements [`TargetFactory`] (with each backend's
/// default sizing), so runtime backend selection is just passing the
/// parsed value to a driver — no per-call-site dispatch match needed:
///
/// ```
/// use iris_fuzzer::parallel::ParallelCampaign;
/// use iris_fuzzer::target::Backend;
///
/// let backend = Backend::parse("faulty").unwrap();
/// let executor = ParallelCampaign::with_factory(2, backend);
/// # let _ = executor;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// [`IrisHvTarget`].
    Iris,
    /// [`FaultyHvTarget`].
    Faulty,
}

impl Backend {
    /// Every registered backend, in listing order.
    pub const ALL: [Backend; 2] = [Backend::Iris, Backend::Faulty];

    /// Look a backend up by its registry name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Backend> {
        Backend::ALL.iter().copied().find(|b| b.name() == name)
    }
}

impl TargetFactory for Backend {
    type Target<'t> = HvTarget<'t>;

    fn build<'t>(&self, plan: BootPlan<'t>) -> HvTarget<'t> {
        match self {
            Backend::Iris => IrisHvTarget::default().build(plan),
            Backend::Faulty => FaultyHvTarget::default().build(plan),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Backend::Iris => IrisHvTarget::default().name(),
            Backend::Faulty => FaultyHvTarget::default().name(),
        }
    }

    fn description(&self) -> &'static str {
        match self {
            Backend::Iris => IrisHvTarget::default().description(),
            Backend::Faulty => FaultyHvTarget::default().description(),
        }
    }
}

/// A [`Backend`] plus runtime tuning — dummy-VM sizing and the optional
/// snapshot forest. This is what the CLI hands to drivers once
/// `--target`/`--forest`/`--forest-cap` are parsed; with `forest: None`
/// it builds byte-for-byte the same targets as the bare [`Backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfiguredBackend {
    /// Which registered backend to build.
    pub backend: Backend,
    /// Guest RAM for the dummy domain.
    pub ram_bytes: u64,
    /// Snapshot-forest configuration (`None` = classic single-snapshot
    /// resets).
    pub forest: Option<ForestConfig>,
}

impl ConfiguredBackend {
    /// Default tuning for a backend: default RAM, forest off.
    #[must_use]
    pub fn new(backend: Backend) -> Self {
        Self {
            backend,
            ram_bytes: crate::campaign::DEFAULT_RAM_BYTES,
            forest: None,
        }
    }

    /// Set (or clear) the snapshot-forest configuration.
    #[must_use]
    pub fn with_forest(mut self, forest: Option<ForestConfig>) -> Self {
        self.forest = forest;
        self
    }
}

impl TargetFactory for ConfiguredBackend {
    type Target<'t> = HvTarget<'t>;

    fn build<'t>(&self, plan: BootPlan<'t>) -> HvTarget<'t> {
        let faults = match self.backend {
            Backend::Iris => FaultInjection::NONE,
            Backend::Faulty => FaultInjection::planted(),
        };
        let mut target = build_hv_target(plan, self.ram_bytes, faults);
        target.forest_cfg = self.forest;
        target
    }

    fn name(&self) -> &'static str {
        self.backend.name()
    }

    fn description(&self) -> &'static str {
        self.backend.description()
    }

    fn forest(&self) -> Option<ForestConfig> {
        self.forest
    }
}

/// Match a crash corpus against the planted-fault ground truth: for each
/// defect [`FaultInjection::planted`] arms, the first corpus record whose
/// console carries its banner (or `None` if the campaign missed it).
#[must_use]
pub fn detect_planted_faults(
    corpus: &Corpus,
) -> Vec<(&'static PlantedFault, Option<&CrashRecord>)> {
    FaultInjection::descriptors()
        .iter()
        .map(|fault| {
            (
                fault,
                corpus
                    .crashes
                    .iter()
                    .find(|c| c.console.contains(fault.banner)),
            )
        })
        .collect()
}

/// Render the ground-truth detection report for a crash corpus — the
/// one format the CLI, the bench bins, and the CI smoke's
/// `planted faults: 3/3 detected` grep contract all share.
#[must_use]
pub fn render_planted_fault_report(corpus: &Corpus) -> String {
    let detections = detect_planted_faults(corpus);
    let found = detections.iter().filter(|(_, hit)| hit.is_some()).count();
    let mut out = format!("planted faults: {found}/{} detected\n", detections.len());
    for (fault, hit) in &detections {
        match hit {
            Some(c) => out.push_str(&format!(
                "  {:<34} detected — \"{}\"\n",
                fault.name, c.console
            )),
            None => out.push_str(&format!("  {:<34} MISSED\n", fault.name)),
        }
    }
    out
}

/// Record a workload trace on a throwaway stock stack — the recording
/// half of the paper's pipeline, shared by tests, benches and examples.
/// (Post-boot workloads record from the booted snapshot, like §VII-1's
/// `s0`.)
#[must_use]
pub fn record_trace(workload: Workload, exits: usize, rng_seed: u64) -> RecordedTrace {
    let mut hv = Hypervisor::new();
    let dom = hv.create_hvm_domain(crate::campaign::DEFAULT_RAM_BYTES);
    if workload != Workload::OsBoot {
        fast_forward_boot(&mut hv, dom);
    }
    Recorder::new().record_workload(
        &mut hv,
        dom,
        workload.label(),
        workload.generate(exits, rng_seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_vtx::exit::ExitReason;

    fn boot_trace(n: usize) -> RecordedTrace {
        record_trace(Workload::OsBoot, n, 42)
    }

    #[test]
    fn backend_registry_round_trips() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert!(!b.description().is_empty());
        }
        assert_eq!(Backend::parse("martian"), None);
    }

    #[test]
    fn boot_reaches_s1_and_submit_reports_coverage() {
        let trace = boot_trace(80);
        let idx = trace
            .seeds
            .iter()
            .position(|s| s.reason == ExitReason::CrAccess)
            .expect("boot trace has CR accesses");
        let factory = IrisHvTarget::default();
        let mut target = factory.build(BootPlan::for_test_case(&trace, idx));
        target.boot();
        let out = target.submit(&trace.seeds[idx]);
        assert!(out.coverage.lines() > 0);
        assert!(out.crash.is_none(), "recorded seed replays cleanly");
        assert!(out.cycles > 0);
    }

    #[test]
    fn reset_after_crash_reproduces_the_baseline() {
        let trace = boot_trace(80);
        let idx = trace
            .seeds
            .iter()
            .position(|s| s.reason == ExitReason::CrAccess)
            .unwrap();
        let factory = IrisHvTarget::default();
        let mut target = factory.build(BootPlan::for_test_case(&trace, idx));
        target.boot();
        let baseline = target.submit(&trace.seeds[idx]);

        // Crash the SUT with a mutant flipping the exit reason into the
        // unhandled range, then reset and re-check the baseline.
        let mut mutant = trace.seeds[idx].clone();
        for pair in &mut mutant.reads {
            if pair.0 == iris_vtx::fields::VmcsField::VmExitReason {
                pair.1 = 11; // GETSEC: never configured to exit
            }
        }
        let crashed = target.submit(&mutant);
        assert!(crashed.crash.is_some(), "mutant must crash");
        target.reset();
        let again = target.submit(&trace.seeds[idx]);
        assert_eq!(baseline.coverage, again.coverage);
        assert!(again.crash.is_none());
    }

    #[test]
    fn faulty_backend_is_clean_on_recorded_seeds() {
        let trace = boot_trace(100);
        let factory = FaultyHvTarget::default();
        let mut target = factory.build(BootPlan::for_test_case(&trace, trace.seeds.len() - 1));
        target.boot(); // replays the whole prefix with debug asserts on
        let out = target.submit(&trace.seeds[trace.seeds.len() - 1]);
        assert!(
            out.crash.is_none(),
            "planted faults stay dormant: {:?}",
            out.crash
        );
    }

    #[test]
    #[should_panic(expected = "boot() the target first")]
    fn submitting_before_boot_is_a_driver_bug() {
        let trace = boot_trace(10);
        let factory = IrisHvTarget::default();
        let mut target = factory.build(BootPlan::post_boot(&trace));
        let _ = target.submit(&trace.seeds[0]);
    }

    #[test]
    fn forest_target_pins_and_restores_states() {
        let trace = boot_trace(60);
        let factory =
            ConfiguredBackend::new(Backend::Iris).with_forest(Some(ForestConfig::default()));
        assert!(factory.forest().is_some());
        let mut target = factory.build(BootPlan::post_boot(&trace));
        target.boot();
        assert!(
            target.reset_to(StateId::ROOT),
            "the forest root is always restorable"
        );

        // Advance two seeds, pin, diverge, come back: the pinned state
        // must reproduce the continuation byte-for-byte.
        let _ = target.submit(&trace.seeds[0]);
        let _ = target.submit(&trace.seeds[1]);
        let pinned = target.pin_state().expect("forest mode pins states");
        let expected = target.submit(&trace.seeds[2]);
        target.reset();
        let _ = target.submit(&trace.seeds[5]);
        assert!(target.reset_to(pinned), "pinned node restores");
        let again = target.submit(&trace.seeds[2]);
        assert_eq!(expected.coverage, again.coverage);
        assert_eq!(expected.crash, again.crash);
    }

    #[test]
    fn forest_survives_a_sut_fatal_reboot() {
        let trace = boot_trace(60);
        let factory =
            ConfiguredBackend::new(Backend::Iris).with_forest(Some(ForestConfig::default()));
        let mut target = factory.build(BootPlan::post_boot(&trace));
        target.boot();
        let _ = target.submit(&trace.seeds[0]);
        let pinned = target.pin_state().unwrap();
        let expected = target.submit(&trace.seeds[1]);

        // Kill the whole stack with an unhandled-exit mutant.
        let mut fatal = trace.seeds[0].clone();
        for pair in &mut fatal.reads {
            if pair.0 == iris_vtx::fields::VmcsField::VmExitReason {
                pair.1 = 11; // GETSEC: never configured to exit
            }
        }
        let _ = target.submit(&fatal);
        assert!(
            target.reset_to(pinned),
            "reboot salvages the forest and the pin survives"
        );
        let again = target.submit(&trace.seeds[1]);
        assert_eq!(expected.coverage, again.coverage);
    }

    #[test]
    fn forest_off_configured_backend_has_no_pins() {
        let trace = boot_trace(20);
        let factory = ConfiguredBackend::new(Backend::Iris);
        let mut target = factory.build(BootPlan::post_boot(&trace));
        target.boot();
        assert_eq!(target.pin_state(), None);
        assert!(!target.reset_to(StateId::ROOT));
    }

    #[test]
    fn detect_planted_faults_reports_misses_on_an_empty_corpus() {
        let empty = Corpus::new();
        let report = detect_planted_faults(&empty);
        assert_eq!(report.len(), FaultInjection::descriptors().len());
        assert!(report.iter().all(|(_, hit)| hit.is_none()));
    }
}
