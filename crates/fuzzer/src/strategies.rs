//! Extended mutation strategies (§IX: *"the simpler mutation rules
//! adopted do not cover the complex fuzzing logic that is adopted by
//! current state-of-the-art fuzzers"* — this module adds that logic).
//!
//! Beyond the PoC's single bit-flip, the standard greybox repertoire:
//! multi-bit havoc, AFL-style arithmetic deltas, interesting-value
//! substitution (architectural magic numbers), byte swaps, and
//! cross-seed splicing. Every strategy preserves seed well-formedness
//! (the wire format still round-trips), so mutants remain submittable.

use crate::mutation::{mutant_rng, SeedArea};
use iris_core::seed::VmSeed;
use iris_vtx::gpr::Gpr;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The available strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// The PoC's single bit-flip.
    BitFlip,
    /// 2–8 bit-flips spread over the area (AFL "havoc"-lite).
    Havoc,
    /// Add/subtract a small delta (1..=35) to a value.
    Arith,
    /// Replace a value with an architectural "interesting" constant.
    InterestingValue,
    /// Swap two byte lanes within a value.
    ByteSwap,
    /// Splice: copy one field value from a donor seed.
    Splice,
}

impl Strategy {
    /// All strategies.
    pub const ALL: [Strategy; 6] = [
        Strategy::BitFlip,
        Strategy::Havoc,
        Strategy::Arith,
        Strategy::InterestingValue,
        Strategy::ByteSwap,
        Strategy::Splice,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Strategy::BitFlip => "bitflip",
            Strategy::Havoc => "havoc",
            Strategy::Arith => "arith",
            Strategy::InterestingValue => "interesting",
            Strategy::ByteSwap => "byteswap",
            Strategy::Splice => "splice",
        }
    }
}

/// Architectural magic values that historically break hypervisors:
/// mode-bit soup, canonical-boundary addresses, selector edge cases.
pub const INTERESTING: &[u64] = &[
    0,
    1,
    0x8000_0000,
    0xffff_ffff,
    0x8000_0000_0000_0000,
    u64::MAX,
    0x0000_8000_0000_0000, // first non-canonical address
    0xffff_7fff_ffff_ffff, // last non-canonical address
    0x0000_0000_8005_003b, // a plausible CR0 (PE|PG|NE|ET|AM|WP)
    0xfee0_0000,           // APIC base
    0x0000_0000_0000_0038, // a selector
];

/// Apply `strategy` to a copy of `seed` in `area`. `donor` feeds the
/// splice strategy (falls back to bit-flip without one).
pub fn mutate_with<R: Rng>(
    seed: &VmSeed,
    area: SeedArea,
    strategy: Strategy,
    donor: Option<&VmSeed>,
    rng: &mut R,
) -> VmSeed {
    let mut m = seed.clone();
    let apply = |value: u64, rng: &mut R, strategy: Strategy| -> u64 {
        match strategy {
            Strategy::BitFlip => value ^ (1u64 << rng.gen_range(0..64u8)),
            Strategy::Havoc => {
                let mut v = value;
                for _ in 0..rng.gen_range(2..=8usize) {
                    v ^= 1u64 << rng.gen_range(0..64u8);
                }
                v
            }
            Strategy::Arith => {
                let delta = rng.gen_range(1..=35u64);
                if rng.gen_bool(0.5) {
                    value.wrapping_add(delta)
                } else {
                    value.wrapping_sub(delta)
                }
            }
            Strategy::InterestingValue => INTERESTING[rng.gen_range(0..INTERESTING.len())],
            Strategy::ByteSwap => {
                let a = rng.gen_range(0..8u32);
                let b = rng.gen_range(0..8u32);
                let ba = (value >> (8 * a)) & 0xff;
                let bb = (value >> (8 * b)) & 0xff;
                let mut v = value & !(0xffu64 << (8 * a)) & !(0xffu64 << (8 * b));
                v |= bb << (8 * a);
                v |= ba << (8 * b);
                v
            }
            Strategy::Splice => value, // handled below
        }
    };

    match area {
        SeedArea::Vmcs => {
            if m.reads.is_empty() {
                return m;
            }
            let i = rng.gen_range(0..m.reads.len());
            if strategy == Strategy::Splice {
                if let Some(d) = donor {
                    if let Some(&(_, dv)) = d.reads.get(i % d.reads.len().max(1)) {
                        m.reads[i].1 = dv;
                        return m;
                    }
                }
                m.reads[i].1 ^= 1u64 << rng.gen_range(0..64u8);
                return m;
            }
            m.reads[i].1 = apply(m.reads[i].1, rng, strategy);
        }
        SeedArea::Gpr => {
            let g = Gpr::ALL[rng.gen_range(0..Gpr::COUNT)];
            if strategy == Strategy::Splice {
                if let Some(d) = donor {
                    m.gprs.set(g, d.gprs.get(g));
                    return m;
                }
            }
            let v = apply(m.gprs.get(g), rng, strategy);
            m.gprs.set(g, v);
        }
    }
    m
}

/// One slot of a guided generation, fully scheduled: the mutant to
/// submit plus the deterministic choices that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledMutant {
    /// The mutant seed to submit.
    pub mutant: VmSeed,
    /// Index of the mutation base within the generation-start corpus.
    pub base_index: usize,
    /// The strategy that was applied.
    pub strategy: Strategy,
    /// The seed area that was mutated.
    pub area: SeedArea,
}

/// The generational scheduling law — the guided twin of the campaign's
/// per-range RNG law ([`crate::mutation::mutant_rng`]).
///
/// Slot `slot` of a guided run is a **pure function** of
/// `(corpus, rng_seed, slot)`, where `corpus` is the generation-start
/// corpus snapshot:
///
/// * base: `corpus[slot % corpus.len()]` (round-robin, like the
///   sequential loop's scheduler);
/// * strategy: [`Strategy::ALL`] rotated once per corpus sweep
///   (`(slot / corpus.len()) % |ALL|`);
/// * everything random — the area split (70 % VMCS / 30 % GPR), the
///   splice donor, and the mutation's own draws — comes from
///   `mutant_rng(rng_seed, slot)`, i.e. `SmallRng(rng_seed ⊕ slot)`.
///
/// Because no state threads from one slot to the next, **any**
/// partition of a generation's slot range over workers generates
/// exactly the mutants the sequential sweep generates — the invariance
/// the shared-corpus engine's byte-identical-for-any-`jobs` guarantee
/// rests on, extending the PR-4 law from campaign mutant indices to
/// guided slot indices.
///
/// # Panics
/// Panics if `corpus` is empty — the engine returns before scheduling
/// anything when there is nothing to mutate.
#[must_use]
pub fn scheduled_mutant(corpus: &[VmSeed], rng_seed: u64, slot: u64) -> ScheduledMutant {
    assert!(!corpus.is_empty(), "cannot schedule over an empty corpus");
    let len = corpus.len() as u64;
    let base_index = (slot % len) as usize;
    let strategy = Strategy::ALL[((slot / len) % Strategy::ALL.len() as u64) as usize];
    let mut rng = mutant_rng(rng_seed, slot);
    let area = if rng.gen_bool(0.7) {
        SeedArea::Vmcs
    } else {
        SeedArea::Gpr
    };
    let donor_index = rng.gen_range(0..corpus.len());
    let mutant = mutate_with(
        &corpus[base_index],
        area,
        strategy,
        Some(&corpus[donor_index]),
        &mut rng,
    );
    ScheduledMutant {
        mutant,
        base_index,
        strategy,
        area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_vtx::exit::ExitReason;
    use iris_vtx::fields::VmcsField;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seed() -> VmSeed {
        let mut s = VmSeed::new(ExitReason::CrAccess);
        s.push_read(VmcsField::VmExitReason, 28);
        s.push_read(VmcsField::ExitQualification, 0x10);
        s.push_read(VmcsField::GuestRip, 0x10_0000);
        s.gprs.set(Gpr::Rax, 0x31);
        s
    }

    #[test]
    fn every_strategy_produces_wellformed_mutants() {
        let s = seed();
        let donor = {
            let mut d = seed();
            d.reads[2].1 = 0xffff_ffff_8123_4567;
            d
        };
        let mut rng = SmallRng::seed_from_u64(1);
        for strat in Strategy::ALL {
            for area in SeedArea::ALL {
                let m = mutate_with(&s, area, strat, Some(&donor), &mut rng);
                // Structure preserved, wire format intact.
                assert_eq!(m.reads.len(), s.reads.len(), "{strat:?}");
                assert_eq!(m.reason, s.reason);
                let round = VmSeed::decode(&m.encode()).unwrap();
                assert_eq!(round, m);
            }
        }
    }

    #[test]
    fn interesting_values_come_from_the_table() {
        let s = seed();
        let mut rng = SmallRng::seed_from_u64(2);
        let m = mutate_with(
            &s,
            SeedArea::Vmcs,
            Strategy::InterestingValue,
            None,
            &mut rng,
        );
        let changed = m
            .reads
            .iter()
            .zip(&s.reads)
            .find(|(a, b)| a.1 != b.1)
            .map(|(a, _)| a.1);
        if let Some(v) = changed {
            assert!(INTERESTING.contains(&v));
        }
    }

    #[test]
    fn splice_copies_donor_values() {
        let s = seed();
        let mut donor = seed();
        donor.gprs.set(Gpr::Rax, 0xd0d0);
        let mut rng = SmallRng::seed_from_u64(3);
        // GPR splice: some register now equals the donor's.
        let m = mutate_with(&s, SeedArea::Gpr, Strategy::Splice, Some(&donor), &mut rng);
        let differs = Gpr::ALL
            .iter()
            .any(|&g| m.gprs.get(g) != s.gprs.get(g) && m.gprs.get(g) == donor.gprs.get(g));
        // (May pick a register where donor == seed; accept either, but the
        // operation must never invent values.)
        for &g in &Gpr::ALL {
            assert!(m.gprs.get(g) == s.gprs.get(g) || m.gprs.get(g) == donor.gprs.get(g));
        }
        let _ = differs;
    }

    #[test]
    fn byteswap_preserves_byte_multiset() {
        let s = seed();
        let mut rng = SmallRng::seed_from_u64(4);
        let m = mutate_with(&s, SeedArea::Vmcs, Strategy::ByteSwap, None, &mut rng);
        for ((_, a), (_, b)) in m.reads.iter().zip(&s.reads) {
            let mut ba = a.to_le_bytes();
            let mut bb = b.to_le_bytes();
            ba.sort_unstable();
            bb.sort_unstable();
            assert_eq!(ba, bb, "byte swap permutes, never invents");
        }
    }

    #[test]
    fn scheduled_mutant_is_a_pure_function_of_corpus_seed_and_slot() {
        let corpus = vec![seed(), {
            let mut d = seed();
            d.reads[1].1 = 0x20;
            d
        }];
        for slot in [0u64, 1, 5, 12, 255, u64::MAX] {
            let a = scheduled_mutant(&corpus, 9, slot);
            let b = scheduled_mutant(&corpus, 9, slot);
            assert_eq!(a, b, "slot {slot} must be deterministic");
            assert_eq!(a.base_index, (slot % 2) as usize, "round-robin base");
        }
        // The strategy rotates once per corpus sweep.
        assert_eq!(scheduled_mutant(&corpus, 9, 0).strategy, Strategy::ALL[0]);
        assert_eq!(scheduled_mutant(&corpus, 9, 2).strategy, Strategy::ALL[1]);
        // Adjacent slots decorrelate (not all identical mutants).
        let mutants: Vec<_> = (0..16)
            .map(|s| scheduled_mutant(&corpus, 9, s).mutant)
            .collect();
        assert!(mutants.iter().any(|m| m != &mutants[0]));
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn scheduling_over_an_empty_corpus_is_a_driver_bug() {
        let _ = scheduled_mutant(&[], 1, 0);
    }

    #[test]
    fn deterministic_per_rng_seed() {
        let s = seed();
        for strat in Strategy::ALL {
            let a = mutate_with(
                &s,
                SeedArea::Vmcs,
                strat,
                None,
                &mut SmallRng::seed_from_u64(9),
            );
            let b = mutate_with(
                &s,
                SeedArea::Vmcs,
                strat,
                None,
                &mut SmallRng::seed_from_u64(9),
            );
            assert_eq!(a, b, "{strat:?}");
        }
    }
}
