//! The crash corpus (§VII-3).
//!
//! *"In these cases, the test case, as well as the submitted VM seeds,
//! are saved for further investigation with the aim of crash analysis to
//! reveal potential bugs in the source code."*

use crate::failure::FailureKind;
use crate::mutation::AppliedMutation;
use crate::testcase::TestCase;
use iris_core::seed::VmSeed;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// One saved crash: everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRecord {
    /// The planned test case that found it.
    pub testcase: TestCase,
    /// Which mutant in the sequence (0-based).
    pub mutant_index: usize,
    /// The mutated seed that was submitted.
    pub seed: VmSeed,
    /// The mutation that produced it.
    pub mutation: Option<AppliedMutation>,
    /// The classification.
    pub kind: FailureKind,
    /// The console message the crash left.
    pub console: String,
}

/// Whether two crash records carry the same signature:
/// `(kind, mutation site/area, console message)`. The flipped-bit
/// position is deliberately *not* part of the key — a crashy mutation
/// site produces the same failure for many bit positions, and those are
/// exactly the duplicates that used to flood the corpus. A VMCS site is
/// identified by the *field* the flipped read pair names, not by the
/// seed-relative pair index: the corpus dedups campaign-wide, and
/// `reads[2]` means a different field in every seed.
#[must_use]
pub fn same_signature(a: &CrashRecord, b: &CrashRecord) -> bool {
    a.kind == b.kind
        && a.console == b.console
        && match (&a.mutation, &b.mutation) {
            (
                Some(AppliedMutation::VmcsBitFlip { index: ia, .. }),
                Some(AppliedMutation::VmcsBitFlip { index: ib, .. }),
            ) => {
                let field = |r: &CrashRecord, i: usize| r.seed.reads.get(i).map(|pair| pair.0);
                field(a, *ia) == field(b, *ib)
            }
            (
                Some(AppliedMutation::GprBitFlip { gpr: ga, .. }),
                Some(AppliedMutation::GprBitFlip { gpr: gb, .. }),
            ) => ga == gb,
            (None, None) => true,
            _ => false,
        }
}

/// A collection of crash records, deduplicated by signature.
///
/// Every observed crash is *counted* ([`Corpus::observed`]), but only
/// the first record of each `(kind, mutation site, console)` signature
/// is *stored* ([`Corpus::len`] / [`Corpus::unique`]) — one reproducer
/// per distinct failure, however many bit positions retrigger it.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Corpus {
    /// Deduplicated crash records, in discovery order.
    pub crashes: Vec<CrashRecord>,
    /// Crashes observed, including deduplicated duplicates.
    observed: u64,
}

impl Deserialize for Corpus {
    /// Hand-written for backward compatibility: corpora persisted before
    /// dedup carry no `observed` field and may hold duplicate records.
    /// Loaded records are re-pushed through the dedup path (restoring
    /// the "one record per signature" invariant, with every record
    /// counted as observed), and the persisted `observed` count — when
    /// present and larger — wins, so a modern save/load round-trips.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::msg("corpus must be a map"))?;
        let records = match serde::value::map_get(entries, "crashes") {
            Some(c) => Vec::<CrashRecord>::from_value(c)?,
            None => Vec::new(),
        };
        let persisted_observed = serde::value::map_get(entries, "observed")
            .and_then(serde::Value::as_u64)
            .unwrap_or(0);
        let mut corpus = Corpus::new();
        for record in records {
            corpus.push(record);
        }
        corpus.observed = corpus.observed.max(persisted_observed);
        Ok(corpus)
    }
}

impl Corpus {
    /// Empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a crash. The observation is always counted; the record is
    /// stored only when its signature is new. Returns whether it was
    /// stored.
    pub fn push(&mut self, record: CrashRecord) -> bool {
        self.observed += 1;
        self.insert_unique(record)
    }

    /// Merge another corpus in: its observation count is added and its
    /// records are re-deduplicated against this one, preserving `other`'s
    /// discovery order. Folding per-worker corpora in plan order yields
    /// exactly the corpus a sequential run over the same plan builds.
    pub fn absorb(&mut self, other: Corpus) {
        self.observed += other.observed;
        for record in other.crashes {
            self.insert_unique(record);
        }
    }

    fn insert_unique(&mut self, record: CrashRecord) -> bool {
        if self.crashes.iter().any(|c| same_signature(c, &record)) {
            return false;
        }
        self.crashes.push(record);
        true
    }

    /// Number of stored crash records (`crashes.len()` — the container
    /// convention). Because storage dedups, this equals [`Corpus::unique`].
    #[must_use]
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// Number of crashes observed, including deduplicated duplicates —
    /// the count that matches [`crate::failure::FailureStats`]' crash totals.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of distinct crash signatures stored.
    #[must_use]
    pub fn unique(&self) -> usize {
        self.crashes.len()
    }

    /// Whether any crash was observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observed == 0
    }

    /// Crashes of one kind.
    pub fn of_kind(&self, kind: FailureKind) -> impl Iterator<Item = &CrashRecord> {
        self.crashes.iter().filter(move |c| c.kind == kind)
    }

    /// Persist as JSON, atomically, through the shared
    /// [`crate::checkpoint::atomic_write_json`] helper: the bytes go to
    /// a `.tmp` sibling first and are `rename`d into place, so a
    /// campaign interrupted mid-save can never leave a torn corpus
    /// behind — the previous complete corpus (if any) survives intact.
    /// Errors carry the path they happened on.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_vec_pretty(self)
            .map_err(|e| annotate(e.into(), "serializing corpus for", path))?;
        crate::checkpoint::atomic_write_json(path, &json)
    }

    /// Load from JSON. Errors carry the path they happened on.
    pub fn load(path: &Path) -> io::Result<Corpus> {
        let bytes = std::fs::read(path).map_err(|e| annotate(e, "reading corpus from", path))?;
        serde_json::from_slice(&bytes).map_err(|e| annotate(e.into(), "parsing corpus in", path))
    }
}

pub(crate) use crate::checkpoint::annotate;

/// Background corpus persistence: a dedicated writer thread that
/// serializes and saves corpus snapshots off the campaign's aggregator
/// thread, so long campaigns never pause on JSON I/O. A thin wrapper
/// over the shared [`crate::checkpoint::JsonWriter`] loop:
///
/// * [`CorpusWriter::persist`] enqueues a snapshot and returns
///   immediately (the channel is unbounded — the aggregator never
///   blocks);
/// * the writer coalesces: when snapshots arrive faster than the disk
///   can absorb them, only the **newest** pending snapshot is written
///   (each snapshot is cumulative, so intermediates carry no extra
///   information);
/// * every write keeps the atomic `.tmp`-sibling + rename semantics
///   ([`crate::checkpoint::atomic_write_json`]) — an interrupted
///   campaign never leaves a torn corpus;
/// * **every** write error is collected — later snapshots are still
///   attempted — and surfaced joined, each with its path, by
///   [`CorpusWriter::finish`]; a panicking writer thread surfaces as
///   an error there too instead of re-panicking.
///
/// Dropping the writer without calling `finish` detaches the thread: it
/// still drains and writes pending snapshots, but errors are lost.
#[derive(Debug)]
pub struct CorpusWriter {
    inner: crate::checkpoint::JsonWriter<Corpus>,
}

impl CorpusWriter {
    /// Spawn the writer thread; every snapshot is saved to `path`.
    #[must_use]
    pub fn spawn(path: std::path::PathBuf) -> Self {
        Self {
            inner: crate::checkpoint::JsonWriter::spawn(path),
        }
    }

    /// Enqueue a snapshot for persistence. Non-blocking; serialization
    /// and I/O happen on the writer thread.
    pub fn persist(&self, snapshot: Corpus) {
        self.inner.persist(snapshot);
    }

    /// Close the channel, wait for every outstanding write, and surface
    /// **all** collected errors, joined (each carries its path).
    /// Returns the number of snapshots actually written (coalesced
    /// snapshots count once).
    pub fn finish(self) -> io::Result<u64> {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::SeedArea;
    use iris_guest::workloads::Workload;
    use iris_vtx::exit::ExitReason;

    use iris_vtx::fields::VmcsField;

    fn record(kind: FailureKind) -> CrashRecord {
        let mut seed = VmSeed::new(ExitReason::CrAccess);
        seed.push_read(VmcsField::VmExitReason, 28);
        seed.push_read(VmcsField::ExitQualification, 0x10);
        seed.push_read(VmcsField::GuestRip, 0x1000);
        seed.push_read(VmcsField::GuestCr0, 0x31);
        CrashRecord {
            testcase: TestCase::new(Workload::OsBoot, 1, ExitReason::CrAccess, SeedArea::Vmcs, 0),
            mutant_index: 42,
            seed,
            mutation: None,
            kind,
            console: "FATAL: unexpected VM exit reason 7".to_owned(),
        }
    }

    #[test]
    fn push_filter_and_persist() {
        let mut c = Corpus::new();
        assert!(c.push(record(FailureKind::VmCrash)));
        assert!(c.push(record(FailureKind::HypervisorCrash)));
        assert!(
            !c.push(record(FailureKind::HypervisorCrash)),
            "same signature must not be stored twice"
        );
        assert_eq!(c.observed(), 3, "every observation is counted");
        assert_eq!(c.len(), 2, "len matches the stored records");
        assert_eq!(c.unique(), 2, "only distinct signatures are stored");
        assert_eq!(c.of_kind(FailureKind::HypervisorCrash).count(), 1);

        let p = std::env::temp_dir().join("iris-corpus-test.json");
        c.save(&p).unwrap();
        assert_eq!(Corpus::load(&p).unwrap(), c);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn dedup_keys_on_kind_site_and_console() {
        let flip = |index, bit| Some(AppliedMutation::VmcsBitFlip { index, bit });
        let mut c = Corpus::new();
        let base = CrashRecord {
            mutation: flip(2, 17),
            ..record(FailureKind::HypervisorCrash)
        };
        assert!(c.push(base.clone()));
        // Same site, different bit position: the classic flood — dropped.
        assert!(!c.push(CrashRecord {
            mutation: flip(2, 43),
            mutant_index: 99,
            ..base.clone()
        }));
        // Different mutation site (reads[3] names another field): stored.
        assert!(c.push(CrashRecord {
            mutation: flip(3, 17),
            ..base.clone()
        }));
        // The site is the *field*, not the pair index: a crash from a
        // different test case whose seed lists GuestRip at another index
        // is the same failure — dropped.
        assert!(!c.push(CrashRecord {
            mutation: flip(0, 9),
            seed: {
                let mut s = VmSeed::new(ExitReason::CrAccess);
                s.push_read(VmcsField::GuestRip, 0x2000);
                s
            },
            ..base.clone()
        }));
        // Different console banner: stored.
        assert!(c.push(CrashRecord {
            console: "FATAL: unexpected VM exit reason 9".to_owned(),
            ..base.clone()
        }));
        // Same site but the domain died instead of the hypervisor: stored.
        assert!(c.push(CrashRecord {
            kind: FailureKind::VmCrash,
            ..base.clone()
        }));
        // GPR flips key on the register, not the bit.
        let gpr = |gpr, bit| Some(AppliedMutation::GprBitFlip { gpr, bit });
        assert!(c.push(CrashRecord {
            mutation: gpr(iris_vtx::gpr::Gpr::Rax, 1),
            ..base.clone()
        }));
        assert!(!c.push(CrashRecord {
            mutation: gpr(iris_vtx::gpr::Gpr::Rax, 60),
            ..base.clone()
        }));
        assert_eq!(c.observed(), 8);
        assert_eq!(c.unique(), 5);
    }

    #[test]
    fn save_is_atomic_and_leaves_no_tmp_sibling() {
        let dir = std::env::temp_dir();
        let p = dir.join("iris-corpus-atomic-test.json");
        let tmp = dir.join("iris-corpus-atomic-test.json.tmp");
        std::fs::remove_file(&p).ok();

        let mut c = Corpus::new();
        c.push(record(FailureKind::VmCrash));
        c.save(&p).unwrap();
        assert!(!tmp.exists(), "tmp sibling must be renamed away");
        assert_eq!(Corpus::load(&p).unwrap(), c);

        // Overwriting an existing corpus goes through the same rename.
        c.push(record(FailureKind::HypervisorCrash));
        c.save(&p).unwrap();
        assert!(!tmp.exists());
        assert_eq!(Corpus::load(&p).unwrap(), c);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn io_errors_carry_the_path() {
        let missing = std::env::temp_dir().join("iris-no-such-corpus.json");
        let err = Corpus::load(&missing).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound, "kind preserved");
        assert!(
            err.to_string().contains("iris-no-such-corpus.json"),
            "path context missing: {err}"
        );

        let unwritable = std::env::temp_dir()
            .join("iris-no-such-dir")
            .join("corpus.json");
        let err = Corpus::new().save(&unwritable).unwrap_err();
        assert!(
            err.to_string().contains("iris-no-such-dir"),
            "path context missing: {err}"
        );

        // A torn/corrupt file reports the parse failure with its path.
        let bad = std::env::temp_dir().join("iris-corrupt-corpus.json");
        std::fs::write(&bad, b"{\"crashes\": [trunc").unwrap();
        let err = Corpus::load(&bad).unwrap_err();
        assert!(
            err.to_string().contains("iris-corrupt-corpus.json"),
            "path context missing: {err}"
        );
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn legacy_json_without_observed_count_loads_consistently() {
        // A corpus persisted before dedup landed: only a `crashes` list,
        // possibly holding flood duplicates.
        let legacy = serde_json::to_string(&serde::Value::Map(vec![(
            serde::Value::Str("crashes".to_owned()),
            vec![
                record(FailureKind::VmCrash),
                record(FailureKind::HypervisorCrash),
                record(FailureKind::HypervisorCrash),
                record(FailureKind::HypervisorCrash),
            ]
            .to_value(),
        )]))
        .unwrap();
        let c: Corpus = serde_json::from_str(&legacy).unwrap();
        assert_eq!(c.unique(), 2, "legacy duplicates are re-deduplicated");
        assert_eq!(c.observed(), 4, "every legacy record counts as observed");
        assert_eq!(c.len(), c.unique());
        assert_eq!(c.of_kind(FailureKind::HypervisorCrash).count(), 1);
        assert!(!c.is_empty());

        // A modern save/load still round-trips exactly.
        let mut modern = Corpus::new();
        for _ in 0..5 {
            modern.push(record(FailureKind::VmCrash));
        }
        let json = serde_json::to_string(&modern).unwrap();
        assert_eq!(serde_json::from_str::<Corpus>(&json).unwrap(), modern);
    }

    #[test]
    fn corpus_writer_persists_the_newest_snapshot_atomically() {
        let p = std::env::temp_dir().join("iris-corpus-writer-test.json");
        let tmp = std::env::temp_dir().join("iris-corpus-writer-test.json.tmp");
        std::fs::remove_file(&p).ok();

        let writer = CorpusWriter::spawn(p.clone());
        let mut c = Corpus::new();
        c.push(record(FailureKind::VmCrash));
        writer.persist(c.clone());
        c.push(record(FailureKind::HypervisorCrash));
        writer.persist(c.clone());
        let saves = writer.finish().unwrap();
        assert!(saves >= 1, "at least one snapshot must reach disk");
        assert!(!tmp.exists(), "atomic-save semantics preserved");
        // Whatever got coalesced, the final state on disk is the newest.
        assert_eq!(Corpus::load(&p).unwrap(), c);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn corpus_writer_surfaces_write_errors_at_finish() {
        let unwritable = std::env::temp_dir()
            .join("iris-no-such-dir")
            .join("corpus.json");
        let writer = CorpusWriter::spawn(unwritable);
        writer.persist(Corpus::new());
        writer.persist(Corpus::new());
        let err = writer.finish().unwrap_err();
        assert!(
            err.to_string().contains("iris-no-such-dir"),
            "path context missing: {err}"
        );
    }

    #[test]
    fn corpus_writer_keeps_writing_after_an_error() {
        // The old behavior latched the first error and skipped every
        // later snapshot; now each snapshot is attempted and all
        // errors surface joined at finish.
        let dir = std::env::temp_dir().join("iris-corpus-writer-late-dir");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("corpus.json");
        let writer = CorpusWriter::spawn(path.clone());
        writer.persist(Corpus::new()); // fails: the parent dir is missing
        std::thread::sleep(std::time::Duration::from_millis(500));
        std::fs::create_dir_all(&dir).unwrap();
        let mut c = Corpus::new();
        c.push(record(FailureKind::VmCrash));
        writer.persist(c.clone());
        let err = writer.finish().unwrap_err();
        assert!(
            err.to_string().contains("corpus.json"),
            "path context missing: {err}"
        );
        // The error did not latch-skip the later snapshot.
        assert_eq!(Corpus::load(&path).unwrap(), c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corpus_writer_with_no_snapshots_is_a_clean_no_op() {
        let p = std::env::temp_dir().join("iris-corpus-writer-noop.json");
        std::fs::remove_file(&p).ok();
        let writer = CorpusWriter::spawn(p.clone());
        assert_eq!(writer.finish().unwrap(), 0);
        assert!(!p.exists(), "nothing persisted, nothing written");
    }

    #[test]
    fn absorb_rededups_and_keeps_counts() {
        let mut a = Corpus::new();
        a.push(record(FailureKind::HypervisorCrash));
        let mut b = Corpus::new();
        b.push(record(FailureKind::HypervisorCrash)); // duplicate of a's
        b.push(record(FailureKind::VmCrash));
        b.push(record(FailureKind::VmCrash));
        a.absorb(b);
        assert_eq!(a.observed(), 4);
        assert_eq!(a.unique(), 2);

        // Absorbing in plan order equals pushing in plan order.
        let mut seq = Corpus::new();
        for _ in 0..2 {
            seq.push(record(FailureKind::HypervisorCrash));
        }
        for _ in 0..2 {
            seq.push(record(FailureKind::VmCrash));
        }
        assert_eq!(seq, a);
    }
}
