//! The crash corpus (§VII-3).
//!
//! *"In these cases, the test case, as well as the submitted VM seeds,
//! are saved for further investigation with the aim of crash analysis to
//! reveal potential bugs in the source code."*

use crate::failure::FailureKind;
use crate::mutation::AppliedMutation;
use crate::testcase::TestCase;
use iris_core::seed::VmSeed;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// One saved crash: everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRecord {
    /// The planned test case that found it.
    pub testcase: TestCase,
    /// Which mutant in the sequence (0-based).
    pub mutant_index: usize,
    /// The mutated seed that was submitted.
    pub seed: VmSeed,
    /// The mutation that produced it.
    pub mutation: Option<AppliedMutation>,
    /// The classification.
    pub kind: FailureKind,
    /// The console message the crash left.
    pub console: String,
}

/// A collection of crash records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// All saved crashes, in discovery order.
    pub crashes: Vec<CrashRecord>,
}

impl Corpus {
    /// Empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Save a crash.
    pub fn push(&mut self, record: CrashRecord) {
        self.crashes.push(record);
    }

    /// Number of saved crashes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// Whether any crash was saved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }

    /// Crashes of one kind.
    pub fn of_kind(&self, kind: FailureKind) -> impl Iterator<Item = &CrashRecord> {
        self.crashes.iter().filter(move |c| c.kind == kind)
    }

    /// Persist as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, serde_json::to_vec_pretty(self)?)
    }

    /// Load from JSON.
    pub fn load(path: &Path) -> io::Result<Corpus> {
        Ok(serde_json::from_slice(&std::fs::read(path)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::SeedArea;
    use iris_guest::workloads::Workload;
    use iris_vtx::exit::ExitReason;

    fn record(kind: FailureKind) -> CrashRecord {
        CrashRecord {
            testcase: TestCase::new(Workload::OsBoot, 1, ExitReason::CrAccess, SeedArea::Vmcs, 0),
            mutant_index: 42,
            seed: VmSeed::new(ExitReason::CrAccess),
            mutation: None,
            kind,
            console: "FATAL: unexpected VM exit reason 7".to_owned(),
        }
    }

    #[test]
    fn push_filter_and_persist() {
        let mut c = Corpus::new();
        c.push(record(FailureKind::VmCrash));
        c.push(record(FailureKind::HypervisorCrash));
        c.push(record(FailureKind::HypervisorCrash));
        assert_eq!(c.len(), 3);
        assert_eq!(c.of_kind(FailureKind::HypervisorCrash).count(), 2);

        let p = std::env::temp_dir().join("iris-corpus-test.json");
        c.save(&p).unwrap();
        assert_eq!(Corpus::load(&p).unwrap(), c);
        std::fs::remove_file(&p).ok();
    }
}
