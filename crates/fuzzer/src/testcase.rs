//! Test-case structure (§VII-1, Fig. 11).
//!
//! A test case is `(W, VM_seed_R, A)`: a replayed VM behavior `W`, a
//! target seed chosen within it, and the seed area to mutate. Execution
//! starts from the initial VM state `s0`, replays the behavior up to
//! `VM_seed_R` (state `s1`), then submits `M` mutated versions —
//! the *fuzzing sequence* — driving the hypervisor into unseen states.

use crate::mutation::SeedArea;
use iris_guest::workloads::Workload;
use iris_vtx::exit::ExitReason;
use serde::{Deserialize, Serialize};

/// The paper's `M`: mutants per test case.
pub const PAPER_M: usize = 10_000;

/// Default mutants per work-stealing chunk (CLI `--chunk`).
///
/// Chunks are the unit the sharded executor steals, so one huge-`M`
/// cell (the paper runs up to [`PAPER_M`] mutants) spreads across the
/// whole worker pool instead of pinning a single worker. 256 amortizes
/// the per-chunk boot-to-`s1` cost over enough submissions to keep the
/// jobs=1 throughput at the unchunked level while still splitting a
/// 10 000-mutant cell into ~40 stealable pieces.
pub const DEFAULT_CHUNK: usize = 256;

/// A contiguous sub-range `[start, start + len)` of a test case's
/// mutant indices — the unit of work stealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutantRange {
    /// First mutant index in the range.
    pub start: usize,
    /// Number of mutants in the range.
    pub len: usize,
}

impl MutantRange {
    /// The whole mutant range of a test case, as one chunk.
    #[must_use]
    pub fn whole(mutants: usize) -> Self {
        Self {
            start: 0,
            len: mutants,
        }
    }

    /// One past the last mutant index.
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// The mutant indices the range covers.
    #[must_use]
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end()
    }
}

/// One planned test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestCase {
    /// The replayed VM behavior (which workload's recorded trace).
    pub workload: Workload,
    /// Index of `VM_seed_R` within the trace.
    pub seed_index: usize,
    /// The exit reason of `VM_seed_R` (a Table I row).
    pub reason: ExitReason,
    /// Which seed area to mutate (a Table I column).
    pub area: SeedArea,
    /// Number of mutants to submit.
    pub mutants: usize,
    /// RNG seed for the mutation stream (reproducibility).
    pub rng_seed: u64,
}

impl TestCase {
    /// A test case with the paper's `M`.
    #[must_use]
    pub fn new(
        workload: Workload,
        seed_index: usize,
        reason: ExitReason,
        area: SeedArea,
        rng_seed: u64,
    ) -> Self {
        Self {
            workload,
            seed_index,
            reason,
            area,
            mutants: PAPER_M,
            rng_seed,
        }
    }

    /// Table I cell label, e.g. `"OS BOOT/VMCS"`.
    #[must_use]
    pub fn cell_label(&self) -> String {
        format!("{}/{}", self.workload.label(), self.area.label())
    }

    /// Partition the mutant range `0..self.mutants` into chunks of
    /// `chunk` mutants (clamped to ≥ 1; the last chunk is ragged), in
    /// ascending `start` order. A zero-mutant test case still yields one
    /// empty chunk, so every test case produces at least one work item
    /// (the chunk carries the baseline measurement).
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = MutantRange> {
        let mutants = self.mutants;
        let chunk = chunk.max(1);
        (0..mutants.div_ceil(chunk).max(1)).map(move |i| {
            let start = i * chunk;
            MutantRange {
                start,
                len: chunk.min(mutants - start),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_defaults() {
        let tc = TestCase::new(
            Workload::OsBoot,
            17,
            ExitReason::CrAccess,
            SeedArea::Vmcs,
            7,
        );
        assert_eq!(tc.mutants, 10_000);
        assert_eq!(tc.cell_label(), "OS BOOT/VMCS");
    }

    #[test]
    fn serde_round_trip() {
        let tc = TestCase::new(Workload::Idle, 3, ExitReason::Hlt, SeedArea::Gpr, 1);
        let json = serde_json::to_string(&tc).unwrap();
        assert_eq!(serde_json::from_str::<TestCase>(&json).unwrap(), tc);
    }

    #[test]
    fn chunks_partition_the_mutant_range_exactly() {
        let mut tc = TestCase::new(Workload::Idle, 0, ExitReason::Hlt, SeedArea::Gpr, 1);
        for mutants in [1usize, 5, 64, 100, 257] {
            tc.mutants = mutants;
            for chunk in [1usize, 3, 64, 256, usize::MAX] {
                let ranges: Vec<MutantRange> = tc.chunks(chunk).collect();
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "m={mutants} c={chunk}");
                    assert!(r.len >= 1 && r.len <= chunk);
                    next = r.end();
                }
                assert_eq!(
                    next, mutants,
                    "m={mutants} c={chunk}: ranges must cover 0..M"
                );
            }
        }
    }

    #[test]
    fn chunk_edge_cases() {
        let mut tc = TestCase::new(Workload::Idle, 0, ExitReason::Hlt, SeedArea::Gpr, 1);
        tc.mutants = 10;
        // chunk=0 is clamped to 1.
        assert_eq!(tc.chunks(0).count(), 10);
        // chunk ≥ M is one whole-cell range.
        assert_eq!(
            tc.chunks(10).collect::<Vec<_>>(),
            vec![MutantRange::whole(10)]
        );
        assert_eq!(
            tc.chunks(999).collect::<Vec<_>>(),
            vec![MutantRange::whole(10)]
        );
        // Zero mutants still yield one (empty) chunk for the baseline.
        tc.mutants = 0;
        assert_eq!(
            tc.chunks(4).collect::<Vec<_>>(),
            vec![MutantRange { start: 0, len: 0 }]
        );
        // Range accessors.
        let r = MutantRange { start: 6, len: 4 };
        assert_eq!(r.end(), 10);
        assert_eq!(r.indices(), 6..10);
    }
}
