//! Test-case structure (§VII-1, Fig. 11).
//!
//! A test case is `(W, VM_seed_R, A)`: a replayed VM behavior `W`, a
//! target seed chosen within it, and the seed area to mutate. Execution
//! starts from the initial VM state `s0`, replays the behavior up to
//! `VM_seed_R` (state `s1`), then submits `M` mutated versions —
//! the *fuzzing sequence* — driving the hypervisor into unseen states.

use crate::mutation::SeedArea;
use iris_guest::workloads::Workload;
use iris_vtx::exit::ExitReason;
use serde::{Deserialize, Serialize};

/// The paper's `M`: mutants per test case.
pub const PAPER_M: usize = 10_000;

/// One planned test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestCase {
    /// The replayed VM behavior (which workload's recorded trace).
    pub workload: Workload,
    /// Index of `VM_seed_R` within the trace.
    pub seed_index: usize,
    /// The exit reason of `VM_seed_R` (a Table I row).
    pub reason: ExitReason,
    /// Which seed area to mutate (a Table I column).
    pub area: SeedArea,
    /// Number of mutants to submit.
    pub mutants: usize,
    /// RNG seed for the mutation stream (reproducibility).
    pub rng_seed: u64,
}

impl TestCase {
    /// A test case with the paper's `M`.
    #[must_use]
    pub fn new(
        workload: Workload,
        seed_index: usize,
        reason: ExitReason,
        area: SeedArea,
        rng_seed: u64,
    ) -> Self {
        Self {
            workload,
            seed_index,
            reason,
            area,
            mutants: PAPER_M,
            rng_seed,
        }
    }

    /// Table I cell label, e.g. `"OS BOOT/VMCS"`.
    #[must_use]
    pub fn cell_label(&self) -> String {
        format!("{}/{}", self.workload.label(), self.area.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_defaults() {
        let tc = TestCase::new(
            Workload::OsBoot,
            17,
            ExitReason::CrAccess,
            SeedArea::Vmcs,
            7,
        );
        assert_eq!(tc.mutants, 10_000);
        assert_eq!(tc.cell_label(), "OS BOOT/VMCS");
    }

    #[test]
    fn serde_round_trip() {
        let tc = TestCase::new(Workload::Idle, 3, ExitReason::Hlt, SeedArea::Gpr, 1);
        let json = serde_json::to_string(&tc).unwrap();
        assert_eq!(serde_json::from_str::<TestCase>(&json).unwrap(), tc);
    }
}
