//! The shared work-stealing executor every parallel driver runs on.
//!
//! PR 4 built the worker-pool mechanics inside
//! [`crate::parallel::ParallelCampaign`]: an **atomic-cursor claim**
//! over a precomputed, indexed work list (one uncontended `fetch_add`
//! per claim — measured 5.6 vs 13.7 ns against the old
//! `Mutex<VecDeque>` queue), worker threads streaming `(index, output)`
//! pairs to the aggregating thread over an `mpsc` channel, and an
//! aggregator that re-establishes **item order** whatever the
//! completion order was. This module extracts that core so the chunked
//! campaign executor, the guided ensembles, and the generational
//! shared-corpus guided engine ([`crate::guided::run_guided_shared`])
//! all shard on one engine instead of three hand-rolled pools.
//!
//! The primitive is [`run_ordered`]: claim items off the cursor, run
//! each through `work` on whichever worker stole it, and deliver every
//! output to `sink` **in item-index order** on the calling thread —
//! eagerly, as soon as the next-in-order output exists, so a
//! deterministic fold can consume results while workers are still
//! running. Out-of-order arrivals are parked in a map keyed by index,
//! so memory scales with the *out-of-order window* (bounded by how far
//! the fastest worker runs ahead), not with the work list.
//!
//! Workers can carry state across the items they claim:
//! `worker_ctx` builds one context per worker thread, **lazily** on its
//! first claim — a worker that never steals anything never pays for a
//! context. This is how the guided engine gives every worker a private
//! booted [`crate::target::FuzzTarget`] instance that serves all the
//! slots the worker steals in a generation, instead of paying one
//! boot-to-`s1` per work item.
//!
//! Determinism contract: the executor guarantees *delivery order*
//! (index order) and nothing else. Byte-identical results across
//! worker counts additionally require each item's output to be
//! independent of which worker ran it and of the other items that
//! worker ran before — the per-index RNG law
//! ([`crate::mutation::mutant_rng`]) plus history-independent
//! submissions from the canonical target state, exactly the properties
//! the campaign and guided determinism suites pin.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Shard `items` across at most `jobs` worker threads and deliver each
/// item's output to `sink` in **item-index order**, eagerly.
///
/// * Workers claim indices off an atomic cursor (one `fetch_add` per
///   claim, no lock on the hot path).
/// * `worker_ctx` runs on the worker thread, once per worker, lazily at
///   its first successful claim; the context is handed to every `work`
///   call that worker makes.
/// * `sink` runs on the calling thread, concurrently with the workers;
///   out-of-order completions are parked until the gap before them
///   fills.
pub fn run_ordered<T, R, C, B, W, S>(items: &[T], jobs: usize, worker_ctx: B, work: W, mut sink: S)
where
    T: Sync,
    R: Send,
    B: Fn() -> C + Sync,
    W: Fn(&mut C, usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    if items.is_empty() {
        return;
    }
    let workers = jobs.min(items.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let tx = tx.clone();
            let worker_ctx = &worker_ctx;
            let work = &work;
            scope.spawn(move || {
                let mut ctx: Option<C> = None;
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    let ctx = ctx.get_or_insert_with(worker_ctx);
                    if tx.send((index, work(ctx, index, &items[index]))).is_err() {
                        break; // aggregator gone; nothing left to do
                    }
                }
            });
        }
        drop(tx);
        // Re-establish item order: deliver eagerly when the next index
        // arrives, park everything that ran ahead of a gap.
        let mut parked: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        for (index, out) in rx {
            if index == next {
                sink(next, out);
                next += 1;
                while let Some(out) = parked.remove(&next) {
                    sink(next, out);
                    next += 1;
                }
            } else {
                parked.insert(index, out);
            }
        }
        debug_assert_eq!(next, items.len(), "every index was delivered");
        debug_assert!(parked.is_empty());
    });
}

/// [`run_ordered`] collecting the outputs into a `Vec` in item order —
/// the barrier form the guided ensembles use (one indivisible work item
/// per instance, no per-worker state).
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_ctx(items, jobs, || (), |(), index, item| work(index, item))
}

/// [`run_ordered`] with per-worker context, collecting the outputs into
/// a `Vec` in item order — the generational guided engine's batch form:
/// every worker builds one booted target and serves all the slots it
/// steals on it.
pub fn run_indexed_ctx<T, R, C, B, W>(items: &[T], jobs: usize, worker_ctx: B, work: W) -> Vec<R>
where
    T: Sync,
    R: Send,
    B: Fn() -> C + Sync,
    W: Fn(&mut C, usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    run_ordered(items, jobs, worker_ctx, work, |_, r| out.push(r));
    out
}

/// Worker count of the host (`std::thread::available_parallelism`),
/// falling back to 1 where the hint is unavailable.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1usize, 2, 8] {
            let out = run_indexed(&items, jobs, |i, &v| {
                assert_eq!(i, v);
                v * 3
            });
            assert_eq!(out, (0..100).map(|v| v * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sink_sees_strictly_increasing_indices() {
        let items: Vec<u32> = (0..64).collect();
        let mut seen = Vec::new();
        run_ordered(
            &items,
            4,
            || (),
            |(), _, &v| v,
            |index, v| {
                seen.push(index);
                assert_eq!(v as usize, index);
            },
        );
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_contexts_are_lazy_and_bounded_by_jobs() {
        let items: Vec<usize> = (0..40).collect();
        let built = AtomicUsize::new(0);
        let out = run_indexed_ctx(
            &items,
            3,
            || built.fetch_add(1, Ordering::Relaxed),
            |_ctx, _, &v| v,
        );
        assert_eq!(out.len(), 40);
        let built = built.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&built),
            "contexts must be built once per stealing worker, got {built}"
        );
    }

    #[test]
    fn context_persists_across_a_workers_claims() {
        // With one worker, a single context serves every item, so a
        // per-context counter ends at the item count.
        let items: Vec<usize> = (0..25).collect();
        let out = run_indexed_ctx(
            &items,
            1,
            || 0usize,
            |count, _, _| {
                *count += 1;
                *count
            },
        );
        assert_eq!(out, (1..=25).collect::<Vec<_>>());
    }

    #[test]
    fn empty_items_are_a_no_op() {
        let out = run_indexed::<u32, u32, _>(&[], 4, |_, &v| v);
        assert!(out.is_empty());
        let mut fired = false;
        run_ordered::<u32, u32, (), _, _, _>(&[], 4, || (), |(), _, &v| v, |_, _| fired = true);
        assert!(!fired);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [7u64, 8, 9];
        assert_eq!(run_indexed(&items, 64, |_, &v| v + 1), vec![8, 9, 10]);
    }
}
