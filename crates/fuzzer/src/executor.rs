//! The shared work-stealing executor every parallel driver runs on.
//!
//! PR 4 built the worker-pool mechanics inside
//! [`crate::parallel::ParallelCampaign`]: an **atomic-cursor claim**
//! over a precomputed, indexed work list (one uncontended `fetch_add`
//! per claim — measured 5.6 vs 13.7 ns against the old
//! `Mutex<VecDeque>` queue), worker threads streaming `(index, output)`
//! pairs to the aggregating thread over an `mpsc` channel, and an
//! aggregator that re-establishes **item order** whatever the
//! completion order was. This module extracts that core so the chunked
//! campaign executor, the guided ensembles, and the generational
//! shared-corpus guided engine ([`crate::guided::run_guided_shared`])
//! all shard on one engine instead of three hand-rolled pools.
//!
//! The primitive is [`run_ordered`]: claim items off the cursor, run
//! each through `work` on whichever worker stole it, and deliver every
//! output to `sink` **in item-index order** on the calling thread —
//! eagerly, as soon as the next-in-order output exists, so a
//! deterministic fold can consume results while workers are still
//! running. Out-of-order arrivals are parked in a map keyed by index,
//! so memory scales with the *out-of-order window* (bounded by how far
//! the fastest worker runs ahead), not with the work list.
//!
//! Workers can carry state across the items they claim:
//! `worker_ctx` builds one context per worker thread, **lazily** on its
//! first claim — a worker that never steals anything never pays for a
//! context. This is how the guided engine gives every worker a private
//! booted [`crate::target::FuzzTarget`] instance that serves all the
//! slots the worker steals in a generation, instead of paying one
//! boot-to-`s1` per work item.
//!
//! # Fault tolerance
//!
//! PR 6 hardened the claim loop. Every `work` call (together with the
//! lazy context build that may precede it) runs under
//! [`std::panic::catch_unwind`]. When a worker panics:
//!
//! * its context is **torn down** (the panicking state is dropped, and
//!   the worker rebuilds a fresh context lazily on its next claim — a
//!   logical respawn without paying for a new OS thread);
//! * the claimed index is pushed onto a shared **re-lease list** that
//!   every worker checks before touching the cursor, so a surviving
//!   worker (or the recovered panicker) re-claims it and re-executes.
//!
//! Because each item's output is required to be independent of which
//! worker ran it and of that worker's history (the determinism
//! contract below), a re-executed item is **byte-identical** to what
//! the lost attempt would have produced — the run completes with the
//! same result it would have had without the panic. A
//! [`RunPolicy::max_worker_restarts`] budget bounds how many panics a
//! single run absorbs; exhausting it surfaces a typed
//! [`ExecutorError::RestartBudgetExhausted`] instead of a raw panic.
//!
//! Runs can also be **interrupted cooperatively**: a
//! [`RunPolicy::stop`] flag is checked at every claim point, and a
//! tripped flag drains the run into
//! [`ExecutorError::Interrupted`] after the in-flight items finish —
//! the sink has then seen a clean, contiguous prefix of the work list,
//! which is exactly what the checkpoint layer
//! ([`crate::checkpoint`]) persists.
//!
//! Recovery paths are exercised deterministically, not by luck: a
//! test-only [`FaultPlan`] plants panics at chosen item indices or
//! claim ordinals, mirroring the planted-bug philosophy of the
//! `faulty` backend.
//!
//! Determinism contract: the executor guarantees *delivery order*
//! (index order) and nothing else. Byte-identical results across
//! worker counts — and across panic/re-lease schedules — additionally
//! require each item's output to be independent of which worker ran it
//! and of the other items that worker ran before — the per-index RNG
//! law ([`crate::mutation::mutant_rng`]) plus history-independent
//! submissions from the canonical target state, exactly the properties
//! the campaign and guided determinism suites pin.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Marker prefix carried by every panic [`FaultPlan`] injects, so test
/// harnesses (and [`quiet_injected_faults`]) can tell planted faults
/// from real bugs.
pub const INJECTED_FAULT: &str = "injected executor fault";

/// Deterministic harness-fault injection for executor tests.
///
/// A `FaultPlan` plants panics inside the executor's claim loop — the
/// same philosophy as the `faulty` backend's planted bugs: recovery
/// paths are exercised on purpose, at chosen points, rather than by
/// luck. Three triggers compose:
///
/// * [`panic_once_at`](Self::panic_once_at) — panic the first time the
///   given **item index** is claimed; the re-executed attempt runs
///   clean (the trigger is consumed).
/// * [`panic_always_at`](Self::panic_always_at) — panic on **every**
///   claim of the given item index; with a finite restart budget this
///   deterministically exhausts it.
/// * [`panic_at_claim`](Self::panic_at_claim) — panic on the n-th
///   **claim ordinal** of the run (0-based, counted across all
///   workers in claim order), independent of which item was claimed.
///   Ordinals are per [`run_ordered_with`] invocation.
///
/// The plan is interior-mutable and `Sync`; thread it into a run via
/// [`RunPolicy::faults`]. Injected panics carry the
/// [`INJECTED_FAULT`] prefix and otherwise go through the normal
/// panic machinery (so they exercise exactly the production recovery
/// path); call [`quiet_injected_faults`] in tests to keep them out of
/// the test output.
#[derive(Debug, Default)]
pub struct FaultPlan {
    once: Mutex<BTreeSet<usize>>,
    always: BTreeSet<usize>,
    claims: Mutex<BTreeSet<u64>>,
}

impl FaultPlan {
    /// An empty plan: no faults fire.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic the first time item `index` is claimed; later re-claims
    /// of the same index run clean.
    #[must_use]
    pub fn panic_once_at(mut self, index: usize) -> Self {
        // lint:allow(panic-path-audit) -- builder holds &mut self: the lock is
        // uncontended and cannot have been poisoned before the run starts
        self.once.get_mut().expect("fault plan lock").insert(index);
        self
    }

    /// Panic on every claim of item `index` — the deterministic way to
    /// exhaust a restart budget.
    #[must_use]
    pub fn panic_always_at(mut self, index: usize) -> Self {
        self.always.insert(index);
        self
    }

    /// Panic on the claim with ordinal `ordinal` (0-based, counted
    /// across all workers of one run in claim order), regardless of
    /// which item that claim drew.
    #[must_use]
    pub fn panic_at_claim(mut self, ordinal: u64) -> Self {
        self.claims
            .get_mut()
            // lint:allow(panic-path-audit) -- builder holds &mut self: the lock is
            // uncontended and cannot have been poisoned before the run starts
            .expect("fault plan lock")
            .insert(ordinal);
        self
    }

    /// Called by the executor after each claim, before the item runs;
    /// panics if a trigger fires.
    pub fn trip(&self, index: usize, claim_ordinal: u64) {
        // lint:allow(panic-path-audit) -- trip() holds the lock only for this
        // remove; no injected panic can fire while it is held, so no poisoning
        if self.once.lock().expect("fault plan lock").remove(&index) {
            // lint:allow(panic-path-audit) -- deliberate: FaultPlan exists to
            // inject worker panics and exercise the production recovery path
            panic!("{INJECTED_FAULT}: one-shot panic at item {index} (claim {claim_ordinal})");
        }
        if self.always.contains(&index) {
            // lint:allow(panic-path-audit) -- deliberate: FaultPlan exists to
            // inject worker panics and exercise the production recovery path
            panic!("{INJECTED_FAULT}: persistent panic at item {index} (claim {claim_ordinal})");
        }
        if self
            .claims
            .lock()
            // lint:allow(panic-path-audit) -- trip() holds the lock only for this
            // remove; no injected panic can fire while it is held, so no poisoning
            .expect("fault plan lock")
            .remove(&claim_ordinal)
        {
            // lint:allow(panic-path-audit) -- deliberate: FaultPlan exists to
            // inject worker panics and exercise the production recovery path
            panic!("{INJECTED_FAULT}: panic at claim {claim_ordinal} (item {index})");
        }
    }
}

/// Install a process-wide panic hook that suppresses the default
/// "thread panicked" report for [`FaultPlan`]-injected panics (payloads
/// carrying the [`INJECTED_FAULT`] prefix) and forwards everything
/// else to the previous hook.
///
/// Test-suite convenience: injected faults are *expected* panics, and
/// without this every recovery test would spray backtraces into the
/// output. Idempotent; safe to call from concurrent tests.
pub fn quiet_injected_faults() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .is_some_and(|s| s.starts_with(INJECTED_FAULT));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Fault-tolerance knobs for one executor run.
///
/// The default policy matches what the infallible entry points use:
/// a restart budget of [`RunPolicy::DEFAULT_MAX_WORKER_RESTARTS`], no
/// stop flag, no fault injection.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunPolicy<'a> {
    /// How many worker panics one run absorbs before giving up with
    /// [`ExecutorError::RestartBudgetExhausted`]. Each absorbed panic
    /// tears down the panicking worker's context and re-leases the
    /// lost index; `0` means the first panic is fatal. `None` uses
    /// [`RunPolicy::DEFAULT_MAX_WORKER_RESTARTS`].
    pub max_worker_restarts: Option<usize>,
    /// Cooperative stop flag, checked at every claim point. Once it
    /// reads `true`, workers stop claiming (in-flight items finish),
    /// and the run returns [`ExecutorError::Interrupted`] after the
    /// delivered prefix reaches the sink.
    pub stop: Option<&'a AtomicBool>,
    /// Deterministic fault injection (tests only).
    pub faults: Option<&'a FaultPlan>,
}

impl RunPolicy<'_> {
    /// Default panic budget per run: generous enough to ride out a
    /// flaky worker, small enough that a deterministic crash-loop
    /// (every re-execution panics again) fails fast.
    pub const DEFAULT_MAX_WORKER_RESTARTS: usize = 8;

    fn budget(&self) -> usize {
        self.max_worker_restarts
            .unwrap_or(Self::DEFAULT_MAX_WORKER_RESTARTS)
    }

    /// Whether the policy's stop flag (if any) has been tripped — the
    /// check the engines share at their own synchronization points
    /// (generation loop top, fold boundaries) in addition to the
    /// executor's claim points.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.stop.is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// Why a fault-tolerant run did not deliver the full work list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorError {
    /// More worker panics than [`RunPolicy::max_worker_restarts`]
    /// allows; the run poisoned itself instead of crash-looping.
    RestartBudgetExhausted {
        /// The configured budget that was exceeded.
        budget: usize,
        /// Total worker panics observed (always `budget + 1` at the
        /// point of poisoning; more only if several workers panicked
        /// concurrently).
        panics: usize,
        /// Item indices that were claimed but never delivered, sorted.
        lost: Vec<usize>,
        /// Panic message of the last observed worker panic.
        last_panic: String,
    },
    /// A [`RunPolicy::stop`] flag was tripped; the sink received the
    /// contiguous prefix `0..delivered` and nothing else.
    Interrupted {
        /// Items delivered to the sink before the run wound down.
        delivered: usize,
        /// Total length of the work list.
        total: usize,
    },
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RestartBudgetExhausted {
                budget,
                panics,
                lost,
                last_panic,
            } => write!(
                f,
                "worker restart budget exhausted: {panics} panics exceed the budget of \
                 {budget}; lost item indices {lost:?}; last panic: {last_panic}"
            ),
            Self::Interrupted { delivered, total } => {
                write!(
                    f,
                    "run interrupted by stop request after {delivered} of {total} items"
                )
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// What the workers share besides the cursor: the re-lease list and
/// the panic/poison/stop bookkeeping around it.
struct FaultState {
    /// Indices lost to worker panics, waiting to be re-claimed.
    releases: Mutex<Vec<usize>>,
    /// Fast-path mirror of `releases.len()` so the claim loop only
    /// locks when there is something to re-claim.
    released: AtomicUsize,
    /// Total worker panics observed this run.
    panics: AtomicUsize,
    /// Set once the panic count exceeds the budget; all workers wind
    /// down at their next claim point.
    poisoned: AtomicBool,
    /// Claim ordinal counter feeding [`FaultPlan::panic_at_claim`].
    claim_ordinal: AtomicU64,
    /// Indices abandoned *after* poisoning (never re-leased).
    lost: Mutex<Vec<usize>>,
    /// Message of the most recent worker panic.
    last_panic: Mutex<String>,
}

impl FaultState {
    fn new() -> Self {
        Self {
            releases: Mutex::new(Vec::new()),
            released: AtomicUsize::new(0),
            panics: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            claim_ordinal: AtomicU64::new(0),
            lost: Mutex::new(Vec::new()),
            last_panic: Mutex::new(String::new()),
        }
    }

    /// Pop a re-leased index if any are pending. One relaxed load on
    /// the empty fast path — the claim loop stays lock-free unless a
    /// panic actually happened.
    fn pop_release(&self) -> Option<usize> {
        if self.released.load(Ordering::Acquire) == 0 {
            return None;
        }
        // lint:allow(panic-path-audit) -- lock guards a bare Vec pop; no user
        // code runs under it, so it cannot be poisoned
        let mut releases = self.releases.lock().expect("re-lease lock");
        let index = releases.pop();
        self.released.store(releases.len(), Ordering::Release);
        index
    }

    fn push_release(&self, index: usize) {
        // lint:allow(panic-path-audit) -- lock guards a bare Vec push; no user
        // code runs under it, so it cannot be poisoned
        let mut releases = self.releases.lock().expect("re-lease lock");
        releases.push(index);
        self.released.store(releases.len(), Ordering::Release);
    }

    /// Collect every index that was claimed but never delivered.
    fn lost_indices(&self) -> Vec<usize> {
        // lint:allow(panic-path-audit) -- both locks guard bare Vec clones; no
        // user code runs under them, so they cannot be poisoned
        let mut lost: Vec<usize> = self.lost.lock().expect("lost lock").clone();
        // lint:allow(panic-path-audit) -- both locks guard bare Vec clones; no
        // user code runs under them, so they cannot be poisoned
        lost.extend(self.releases.lock().expect("re-lease lock").iter().copied());
        lost.sort_unstable();
        lost
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Fault-tolerant core of the executor: [`run_ordered`] plus a
/// [`RunPolicy`] that controls panic recovery, cooperative stop, and
/// fault injection.
///
/// On success the sink has seen every index in order, exactly once —
/// byte-identical to a run without panics, because re-leased indices
/// re-execute under the same per-index determinism law. On
/// [`ExecutorError::Interrupted`] the sink has seen the contiguous
/// prefix `0..delivered`; outputs parked beyond the first gap are
/// discarded (their indices re-execute on resume). On
/// [`ExecutorError::RestartBudgetExhausted`] the sink likewise saw a
/// clean prefix, and the error lists the indices that were lost.
///
/// # Errors
///
/// [`ExecutorError::RestartBudgetExhausted`] when worker panics exceed
/// `policy.max_worker_restarts`; [`ExecutorError::Interrupted`] when
/// `policy.stop` trips before the work list drains.
pub fn run_ordered_with<T, R, C, B, W, S>(
    items: &[T],
    jobs: usize,
    policy: &RunPolicy<'_>,
    worker_ctx: B,
    work: W,
    mut sink: S,
) -> Result<(), ExecutorError>
where
    T: Sync,
    R: Send,
    B: Fn() -> C + Sync,
    W: Fn(&mut C, usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    if items.is_empty() {
        return Ok(());
    }
    let workers = jobs.min(items.len()).max(1);
    let budget = policy.budget();
    let cursor = AtomicUsize::new(0);
    let faults = FaultState::new();
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let faults = &faults;
            let tx = tx.clone();
            let worker_ctx = &worker_ctx;
            let work = &work;
            scope.spawn(move || {
                let mut ctx: Option<C> = None;
                loop {
                    // Claim point: honour poisoning and stop requests
                    // before taking on more work.
                    if faults.poisoned.load(Ordering::Acquire) || policy.stop_requested() {
                        break;
                    }
                    // Re-leased indices take priority over the cursor
                    // so a lost item is recovered as soon as any
                    // worker is free.
                    let index = match faults.pop_release() {
                        Some(index) => index,
                        None => {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= items.len() {
                                break;
                            }
                            index
                        }
                    };
                    let ordinal = faults.claim_ordinal.fetch_add(1, Ordering::Relaxed);
                    // The lazy context build shares the panic scope
                    // with `work`: a panicking constructor is
                    // recovered the same way as a panicking item.
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        if let Some(plan) = policy.faults {
                            plan.trip(index, ordinal);
                        }
                        let ctx = ctx.get_or_insert_with(worker_ctx);
                        // lint:allow(panic-path-audit) -- index comes from the claim
                        // cursor or the re-lease list, both bounded by items.len()
                        work(ctx, index, &items[index])
                    }));
                    match attempt {
                        Ok(out) => {
                            if tx.send((index, out)).is_err() {
                                break; // aggregator gone; nothing left to do
                            }
                        }
                        Err(payload) => {
                            // Tear down the panicking context; the
                            // next claim rebuilds a fresh one (the
                            // worker "respawns" in place).
                            ctx = None;
                            // lint:allow(panic-path-audit) -- lock guards a bare String
                            // store; no user code runs under it, so it cannot be poisoned
                            *faults.last_panic.lock().expect("last panic lock") =
                                panic_message(payload.as_ref());
                            drop(payload);
                            let panics = faults.panics.fetch_add(1, Ordering::AcqRel) + 1;
                            if panics > budget {
                                // Poison *before* recording the index
                                // as lost so no racing worker can
                                // rescue it: budget exhaustion must
                                // surface deterministically.
                                faults.poisoned.store(true, Ordering::Release);
                                // lint:allow(panic-path-audit) -- lock guards a bare Vec
                                // push; no user code runs under it, so no poisoning
                                faults.lost.lock().expect("lost lock").push(index);
                                break;
                            }
                            faults.push_release(index);
                        }
                    }
                }
            });
        }
        drop(tx);
        // Re-establish item order: deliver eagerly when the next index
        // arrives, park everything that ran ahead of a gap.
        let mut parked: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        for (index, out) in rx {
            if index == next {
                sink(next, out);
                next += 1;
                while let Some(out) = parked.remove(&next) {
                    sink(next, out);
                    next += 1;
                }
            } else {
                parked.insert(index, out);
            }
        }
        if next == items.len() {
            debug_assert!(parked.is_empty());
            return Ok(());
        }
        if faults.poisoned.load(Ordering::Acquire) {
            return Err(ExecutorError::RestartBudgetExhausted {
                budget,
                panics: faults.panics.load(Ordering::Acquire),
                lost: faults.lost_indices(),
                // lint:allow(panic-path-audit) -- lock guards a bare String clone;
                // no user code runs under it, so it cannot be poisoned
                last_panic: faults.last_panic.lock().expect("last panic lock").clone(),
            });
        }
        Err(ExecutorError::Interrupted {
            delivered: next,
            total: items.len(),
        })
    })
}

/// Shard `items` across at most `jobs` worker threads and deliver each
/// item's output to `sink` in **item-index order**, eagerly.
///
/// * Workers claim indices off an atomic cursor (one `fetch_add` per
///   claim, no lock on the hot path).
/// * `worker_ctx` runs on the worker thread, once per worker, lazily at
///   its first successful claim; the context is handed to every `work`
///   call that worker makes.
/// * `sink` runs on the calling thread, concurrently with the workers;
///   out-of-order completions are parked until the gap before them
///   fills.
///
/// Worker panics are absorbed and the lost indices re-executed under
/// the default [`RunPolicy`]; only exhausting the default restart
/// budget panics (with the [`ExecutorError`] message). Use
/// [`run_ordered_with`] to configure recovery, interruption, or fault
/// injection.
pub fn run_ordered<T, R, C, B, W, S>(items: &[T], jobs: usize, worker_ctx: B, work: W, sink: S)
where
    T: Sync,
    R: Send,
    B: Fn() -> C + Sync,
    W: Fn(&mut C, usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    if let Err(err) = run_ordered_with(items, jobs, &RunPolicy::default(), worker_ctx, work, sink) {
        // No stop flag in the default policy, so the only reachable
        // error is budget exhaustion — a persistent crash-loop.
        // lint:allow(panic-path-audit) -- infallible wrapper by contract: a
        // persistent crash-loop past the default budget is itself a panic
        panic!("executor run failed: {err}");
    }
}

/// [`run_ordered`] collecting the outputs into a `Vec` in item order —
/// the barrier form the guided ensembles use (one indivisible work item
/// per instance, no per-worker state).
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_ctx(items, jobs, || (), |(), index, item| work(index, item))
}

/// [`run_ordered`] with per-worker context, collecting the outputs into
/// a `Vec` in item order — the generational guided engine's batch form:
/// every worker builds one booted target and serves all the slots it
/// steals on it.
pub fn run_indexed_ctx<T, R, C, B, W>(items: &[T], jobs: usize, worker_ctx: B, work: W) -> Vec<R>
where
    T: Sync,
    R: Send,
    B: Fn() -> C + Sync,
    W: Fn(&mut C, usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    run_ordered(items, jobs, worker_ctx, work, |_, r| out.push(r));
    out
}

/// [`run_indexed_ctx`] under an explicit [`RunPolicy`] — the batch
/// form the guided engine uses so a generation can absorb worker
/// panics and honour stop requests.
///
/// # Errors
///
/// Propagates [`run_ordered_with`]'s errors; on
/// [`ExecutorError::Interrupted`] the partially collected outputs are
/// discarded with the error (a generation is all-or-nothing).
pub fn run_indexed_ctx_with<T, R, C, B, W>(
    items: &[T],
    jobs: usize,
    policy: &RunPolicy<'_>,
    worker_ctx: B,
    work: W,
) -> Result<Vec<R>, ExecutorError>
where
    T: Sync,
    R: Send,
    B: Fn() -> C + Sync,
    W: Fn(&mut C, usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    run_ordered_with(items, jobs, policy, worker_ctx, work, |_, r| out.push(r))?;
    Ok(out)
}

/// Worker count of the host (`std::thread::available_parallelism`),
/// falling back to 1 where the hint is unavailable.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn outputs_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1usize, 2, 8] {
            let out = run_indexed(&items, jobs, |i, &v| {
                assert_eq!(i, v);
                v * 3
            });
            assert_eq!(out, (0..100).map(|v| v * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sink_sees_strictly_increasing_indices() {
        let items: Vec<u32> = (0..64).collect();
        let mut seen = Vec::new();
        run_ordered(
            &items,
            4,
            || (),
            |(), _, &v| v,
            |index, v| {
                seen.push(index);
                assert_eq!(v as usize, index);
            },
        );
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_contexts_are_lazy_and_bounded_by_jobs() {
        let items: Vec<usize> = (0..40).collect();
        let built = AtomicUsize::new(0);
        let out = run_indexed_ctx(
            &items,
            3,
            || built.fetch_add(1, Ordering::Relaxed),
            |_ctx, _, &v| v,
        );
        assert_eq!(out.len(), 40);
        let built = built.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&built),
            "contexts must be built once per stealing worker, got {built}"
        );
    }

    #[test]
    fn context_persists_across_a_workers_claims() {
        // With one worker, a single context serves every item, so a
        // per-context counter ends at the item count.
        let items: Vec<usize> = (0..25).collect();
        let out = run_indexed_ctx(
            &items,
            1,
            || 0usize,
            |count, _, _| {
                *count += 1;
                *count
            },
        );
        assert_eq!(out, (1..=25).collect::<Vec<_>>());
    }

    #[test]
    fn empty_items_are_a_no_op() {
        let out = run_indexed::<u32, u32, _>(&[], 4, |_, &v| v);
        assert!(out.is_empty());
        let mut fired = false;
        run_ordered::<u32, u32, (), _, _, _>(&[], 4, || (), |(), _, &v| v, |_, _| fired = true);
        assert!(!fired);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [7u64, 8, 9];
        assert_eq!(run_indexed(&items, 64, |_, &v| v + 1), vec![8, 9, 10]);
    }

    #[test]
    fn injected_panic_is_recovered_byte_identically() {
        quiet_injected_faults();
        let items: Vec<usize> = (0..50).collect();
        let reference = run_indexed(&items, 1, |_, &v| v * 7);
        for jobs in [1usize, 2, 4] {
            let plan = FaultPlan::new()
                .panic_once_at(3)
                .panic_once_at(17)
                .panic_once_at(49);
            let policy = RunPolicy {
                faults: Some(&plan),
                ..RunPolicy::default()
            };
            let out = run_indexed_ctx_with(&items, jobs, &policy, || (), |(), _, &v| v * 7)
                .expect("panics within budget must be absorbed");
            assert_eq!(out, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn claim_ordinal_faults_are_recovered() {
        quiet_injected_faults();
        let items: Vec<usize> = (0..32).collect();
        let plan = FaultPlan::new().panic_at_claim(0).panic_at_claim(9);
        let policy = RunPolicy {
            faults: Some(&plan),
            ..RunPolicy::default()
        };
        let out = run_indexed_ctx_with(&items, 2, &policy, || (), |(), _, &v| v + 1)
            .expect("claim faults within budget must be absorbed");
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_worker_rebuilds_a_fresh_context() {
        quiet_injected_faults();
        let items: Vec<usize> = (0..10).collect();
        let built = AtomicUsize::new(0);
        let plan = FaultPlan::new().panic_once_at(4);
        let policy = RunPolicy {
            faults: Some(&plan),
            ..RunPolicy::default()
        };
        let out = run_indexed_ctx_with(
            &items,
            1,
            &policy,
            || built.fetch_add(1, Ordering::Relaxed),
            |_ctx, _, &v| v,
        )
        .expect("one panic is within the default budget");
        assert_eq!(out, items);
        // One worker, one panic: the original context plus the fresh
        // rebuild after the teardown.
        assert_eq!(built.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn exhausted_restart_budget_is_a_typed_error() {
        quiet_injected_faults();
        let items: Vec<usize> = (0..8).collect();
        let plan = FaultPlan::new().panic_always_at(5);
        let policy = RunPolicy {
            max_worker_restarts: Some(2),
            faults: Some(&plan),
            ..RunPolicy::default()
        };
        let err = run_indexed_ctx_with(&items, 2, &policy, || (), |(), _, &v| v)
            .expect_err("a persistent fault must exhaust the budget");
        match &err {
            ExecutorError::RestartBudgetExhausted {
                budget,
                panics,
                lost,
                last_panic,
            } => {
                assert_eq!(*budget, 2);
                assert_eq!(*panics, 3);
                assert!(
                    lost.contains(&5),
                    "lost {lost:?} must contain the faulty index"
                );
                assert!(last_panic.starts_with(INJECTED_FAULT), "got {last_panic:?}");
            }
            other => panic!("expected RestartBudgetExhausted, got {other:?}"),
        }
        assert!(err.to_string().contains("restart budget exhausted"));
    }

    #[test]
    fn pre_tripped_stop_flag_interrupts_immediately() {
        let items: Vec<usize> = (0..16).collect();
        let stop = AtomicBool::new(true);
        let policy = RunPolicy {
            stop: Some(&stop),
            ..RunPolicy::default()
        };
        let err = run_indexed_ctx_with(&items, 4, &policy, || (), |(), _, &v| v)
            .expect_err("a pre-tripped stop flag must interrupt");
        assert_eq!(
            err,
            ExecutorError::Interrupted {
                delivered: 0,
                total: 16
            }
        );
    }

    #[test]
    fn stop_mid_run_delivers_a_contiguous_prefix() {
        let items: Vec<usize> = (0..200).collect();
        let stop = AtomicBool::new(false);
        let policy = RunPolicy {
            stop: Some(&stop),
            ..RunPolicy::default()
        };
        let mut delivered = Vec::new();
        let err = run_ordered_with(
            &items,
            2,
            &policy,
            || (),
            |(), _, &v| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                v
            },
            |index, v| {
                assert_eq!(index, v);
                delivered.push(index);
                if delivered.len() == 5 {
                    stop.store(true, Ordering::Relaxed);
                }
            },
        )
        .expect_err("stop mid-run must interrupt");
        match err {
            ExecutorError::Interrupted {
                delivered: n,
                total,
            } => {
                assert_eq!(total, 200);
                assert_eq!(n, delivered.len());
                assert!(n >= 5, "the first five deliveries happened before the stop");
                assert!(n < 200, "the stop must cut the run short");
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // The sink saw exactly the contiguous prefix.
        assert_eq!(delivered, (0..delivered.len()).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_context_build_is_recovered() {
        quiet_injected_faults();
        // The first context build panics (via a one-shot fault on the
        // first claim ordinal); the retry builds cleanly.
        let items: Vec<usize> = (0..6).collect();
        let plan = FaultPlan::new().panic_at_claim(0);
        let policy = RunPolicy {
            faults: Some(&plan),
            ..RunPolicy::default()
        };
        let out = run_indexed_ctx_with(&items, 1, &policy, || (), |(), _, &v| v * 2)
            .expect("context-build panic must be absorbed");
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }
}
