//! Failure detection and classification (§VII-3).
//!
//! *"By using scripts that analyze hypervisor behavior and logs, the PoC
//! fuzzer can detect failures occurring during the execution of test
//! cases, that we classify as hypervisor or VM crashes."* The model gives
//! us typed crash values *and* the console ring; the classifier uses the
//! typed value and cross-checks the log, like the paper's scripts grep
//! `xl dmesg`.

use iris_hv::crash::Crash;
use iris_hv::log::LogRing;
use serde::{Deserialize, Serialize};

/// Classified failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// The dummy/test domain crashed; the hypervisor survived.
    VmCrash,
    /// The hypervisor itself died.
    HypervisorCrash,
}

/// Failure counters for a fuzzing sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureStats {
    /// Mutants submitted.
    pub submitted: u64,
    /// VM crashes observed.
    pub vm_crashes: u64,
    /// Hypervisor crashes observed.
    pub hv_crashes: u64,
}

impl FailureStats {
    /// Record one outcome.
    pub fn record(&mut self, crash: Option<&Crash>) {
        self.record_kind(crash.map(|c| {
            if c.is_hypervisor() {
                FailureKind::HypervisorCrash
            } else {
                FailureKind::VmCrash
            }
        }));
    }

    /// Record one classified outcome (the verdict a
    /// [`crate::target::SubmitOutcome`] carries).
    pub fn record_kind(&mut self, kind: Option<FailureKind>) {
        self.submitted += 1;
        match kind {
            None => {}
            Some(FailureKind::HypervisorCrash) => self.hv_crashes += 1,
            Some(FailureKind::VmCrash) => self.vm_crashes += 1,
        }
    }

    /// Fold another sequence's counters into this one (campaign-level
    /// aggregation across test cases or workers).
    pub fn merge(&mut self, other: &FailureStats) {
        self.submitted += other.submitted;
        self.vm_crashes += other.vm_crashes;
        self.hv_crashes += other.hv_crashes;
    }

    /// VM-crash rate in percent (the paper's ≈1% for VMCS mutation).
    #[must_use]
    pub fn vm_crash_percent(&self) -> f64 {
        percent(self.vm_crashes, self.submitted)
    }

    /// Hypervisor-crash rate in percent (the paper's ≈15%).
    #[must_use]
    pub fn hv_crash_percent(&self) -> f64 {
        percent(self.hv_crashes, self.submitted)
    }
}

/// `part` over `whole` in percent — the one percent rule every reported
/// ratio goes through (crash rates, coverage increase). A zero `whole`
/// with a non-zero `part` means "everything is new" and reports 100.0;
/// zero over zero is 0.0. Keeping this in one place stops the campaign
/// and failure helpers from drifting apart on the division-by-zero case.
#[must_use]
pub fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        if part > 0 {
            100.0
        } else {
            0.0
        }
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Classify a crash, cross-checking the console the way the paper's
/// log-analysis scripts do. Returns `None` for no crash.
#[must_use]
pub fn classify(crash: Option<&Crash>, log: &LogRing) -> Option<FailureKind> {
    match crash {
        None => None,
        Some(Crash::Hypervisor(_)) => {
            debug_assert!(
                log.grep("FATAL").next().is_some() || log.grep("Xen BUG").next().is_some(),
                "hypervisor crash must leave a console banner"
            );
            Some(FailureKind::HypervisorCrash)
        }
        Some(Crash::Domain { .. }) => Some(FailureKind::VmCrash),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_hv::crash::{DomainCrashReason, HypervisorCrashReason};
    use iris_hv::log::Level;

    #[test]
    fn stats_accumulate_and_percent() {
        let mut s = FailureStats::default();
        for _ in 0..97 {
            s.record(None);
        }
        s.record(Some(&Crash::Domain {
            domain: 2,
            reason: DomainCrashReason::TripleFault,
        }));
        s.record(Some(&Crash::Hypervisor(
            HypervisorCrashReason::UnhandledExit { reason: 5 },
        )));
        s.record(Some(&Crash::Hypervisor(
            HypervisorCrashReason::UnhandledExit { reason: 6 },
        )));
        assert_eq!(s.submitted, 100);
        assert!((s.vm_crash_percent() - 1.0).abs() < 1e-9);
        assert!((s.hv_crash_percent() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_folds_counters() {
        let mut a = FailureStats {
            submitted: 10,
            vm_crashes: 1,
            hv_crashes: 2,
        };
        let b = FailureStats {
            submitted: 30,
            vm_crashes: 3,
            hv_crashes: 0,
        };
        a.merge(&b);
        assert_eq!(
            a,
            FailureStats {
                submitted: 40,
                vm_crashes: 4,
                hv_crashes: 2,
            }
        );
    }

    #[test]
    fn percent_distinguishes_empty_whole_from_no_part() {
        assert_eq!(percent(0, 0), 0.0);
        assert_eq!(percent(5, 0), 100.0, "new lines over a zero baseline");
        assert!((percent(1, 3) - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn classification_matches_crash_type() {
        let mut log = LogRing::default();
        log.push(0, Level::Crit, "FATAL: unexpected VM exit reason 5");
        assert_eq!(
            classify(
                Some(&Crash::Hypervisor(HypervisorCrashReason::UnhandledExit {
                    reason: 5
                })),
                &log
            ),
            Some(FailureKind::HypervisorCrash)
        );
        assert_eq!(
            classify(
                Some(&Crash::Domain {
                    domain: 1,
                    reason: DomainCrashReason::DoubleFault
                }),
                &log
            ),
            Some(FailureKind::VmCrash)
        );
        assert_eq!(classify(None, &log), None);
    }
}
