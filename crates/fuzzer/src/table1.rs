//! Table I assembly: *"New code coverage discovered across test cases by
//! using IRIS-based fuzzer prototype"* — rows are exit reasons, columns
//! are (workload × mutated area), cells are the percentage increase of
//! coverage discovered by the fuzzing sequence over the single
//! `VM_seed_R` baseline.

use crate::campaign::{Campaign, TestCaseResult};
use crate::mutation::SeedArea;
use crate::parallel::{CampaignReport, ParallelCampaign};
use crate::target::TargetFactory;
use crate::testcase::TestCase;
use iris_core::trace::RecordedTrace;
use iris_guest::workloads::Workload;
use iris_vtx::exit::ExitReason;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The exit reasons Table I uses as rows, in the paper's order.
pub const TABLE1_ROWS: &[ExitReason] = &[
    ExitReason::ExternalInterrupt,
    ExitReason::InterruptWindow,
    ExitReason::Cpuid,
    ExitReason::Hlt,
    ExitReason::Rdtsc,
    ExitReason::Vmcall,
    ExitReason::CrAccess,
    ExitReason::IoInstruction,
    ExitReason::EptViolation,
];

/// The workloads Table I uses as column groups.
pub const TABLE1_WORKLOADS: &[Workload] = &[Workload::OsBoot, Workload::CpuBound, Workload::Idle];

/// One assembled table.
///
/// Serializes as a list of `{reason, workload, area, cell}` records so
/// JSON can carry it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table1 {
    /// `(reason label, workload label, area label)` → result.
    pub cells: BTreeMap<(String, String, String), TestCaseCell>,
}

/// Flat record used for (de)serialization of [`Table1`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Exit-reason label.
    pub reason: String,
    /// Workload label.
    pub workload: String,
    /// Mutated-area label.
    pub area: String,
    /// The cell's numbers.
    pub cell: TestCaseCell,
}

impl Serialize for Table1 {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(
            self.cells
                .iter()
                .map(|((r, w, a), c)| {
                    Table1Row {
                        reason: r.clone(),
                        workload: w.clone(),
                        area: a.clone(),
                        cell: c.clone(),
                    }
                    .to_value()
                })
                .collect(),
        )
    }
}

impl Deserialize for Table1 {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let rows = Vec::<Table1Row>::from_value(v)?;
        let mut t = Table1::default();
        for r in rows {
            t.cells.insert((r.reason, r.workload, r.area), r.cell);
        }
        Ok(t)
    }
}

/// One cell's published numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCaseCell {
    /// Coverage increase percentage (the table's `+N%`).
    pub coverage_increase_percent: f64,
    /// VM-crash rate over the sequence.
    pub vm_crash_percent: f64,
    /// Hypervisor-crash rate over the sequence.
    pub hv_crash_percent: f64,
}

impl Table1 {
    /// Run the full table: for each (workload trace, reason row, area
    /// column) where the trace contains a seed with that reason, run one
    /// test case with `mutants` mutants. (The paper's dashes are reasons
    /// absent from a workload — e.g. HLT never appears in OS BOOT's
    /// 5000-exit slice.) Runs against whatever backend the campaign's
    /// factory builds.
    pub fn run<F: TargetFactory>(
        campaign: &mut Campaign<F>,
        traces: &BTreeMap<Workload, RecordedTrace>,
        mutants: usize,
        rng_seed: u64,
    ) -> Table1 {
        let mut table = Table1::default();
        for tc in Self::plan(traces, mutants, rng_seed) {
            let r = campaign.run_test_case(&traces[&tc.workload], &tc);
            table.insert(&r);
        }
        table
    }

    /// The full-table plan: one test case per (workload trace, reason
    /// row, area column) where the trace contains a seed with that
    /// reason, in the deterministic order [`Table1::run`] executes them.
    #[must_use]
    pub fn plan(
        traces: &BTreeMap<Workload, RecordedTrace>,
        mutants: usize,
        rng_seed: u64,
    ) -> Vec<TestCase> {
        let mut plan = Vec::new();
        for (&workload, trace) in traces {
            for &reason in TABLE1_ROWS {
                let Some(seed_index) = trace.seeds.iter().position(|s| s.reason == reason) else {
                    continue; // the paper's "-" cells
                };
                for area in SeedArea::ALL {
                    plan.push(TestCase {
                        mutants,
                        ..TestCase::new(workload, seed_index, reason, area, rng_seed)
                    });
                }
            }
        }
        plan
    }

    /// Run the full table on a sharded executor. Deterministic: the
    /// plan and per-test-case results are independent of both the
    /// worker count and the executor's work-stealing chunk size (the
    /// per-range RNG law makes every cell's mutant stream
    /// partition-invariant), so the assembled table equals
    /// [`Table1::run`]'s for any `(jobs, chunk)` — and a single
    /// huge-`M` cell (the paper's 10 000-mutant columns) spreads across
    /// the whole pool instead of serializing the sweep. Also returns
    /// the aggregated report (merged coverage, folded stats,
    /// deduplicated corpus) that the sequential API kept in `Campaign`.
    #[must_use]
    pub fn run_parallel<F: TargetFactory>(
        executor: &ParallelCampaign<F>,
        traces: &BTreeMap<Workload, RecordedTrace>,
        mutants: usize,
        rng_seed: u64,
    ) -> (Table1, CampaignReport) {
        let plan = Self::plan(traces, mutants, rng_seed);
        let report = executor.run(traces, &plan);
        let mut table = Table1::default();
        for r in &report.results {
            table.insert(r);
        }
        (table, report)
    }

    fn insert(&mut self, r: &TestCaseResult) {
        self.cells.insert(
            (
                r.testcase.reason.figure_label().to_owned(),
                r.testcase.workload.label().to_owned(),
                r.testcase.area.label().to_owned(),
            ),
            TestCaseCell {
                coverage_increase_percent: r.coverage_increase_percent,
                vm_crash_percent: r.failures.vm_crash_percent(),
                hv_crash_percent: r.failures.hv_crash_percent(),
            },
        );
    }

    /// Fetch one cell.
    #[must_use]
    pub fn cell(
        &self,
        reason: ExitReason,
        workload: Workload,
        area: SeedArea,
    ) -> Option<&TestCaseCell> {
        self.cells.get(&(
            reason.figure_label().to_owned(),
            workload.label().to_owned(),
            area.label().to_owned(),
        ))
    }

    /// Render the table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12}", "Exit Reason"));
        for w in TABLE1_WORKLOADS {
            out.push_str(&format!("{:>12}{:>12}", format!("{}", w.label()), ""));
        }
        out.push('\n');
        out.push_str(&format!("{:<12}", ""));
        for _ in TABLE1_WORKLOADS {
            out.push_str(&format!("{:>12}{:>12}", "VMCS", "GPR"));
        }
        out.push('\n');
        for &reason in TABLE1_ROWS {
            out.push_str(&format!("{:<12}", reason.figure_label()));
            for &w in TABLE1_WORKLOADS {
                for area in SeedArea::ALL {
                    match self.cell(reason, w, area) {
                        Some(c) => out.push_str(&format!(
                            "{:>12}",
                            format!("+{:.0}%", c.coverage_increase_percent)
                        )),
                        None => out.push_str(&format!("{:>12}", "-")),
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::record_trace;

    #[test]
    fn small_table_assembles_with_dashes() {
        let mut traces = BTreeMap::new();
        traces.insert(Workload::OsBoot, record_trace(Workload::OsBoot, 150, 42));

        let mut campaign = Campaign::new();
        let table = Table1::run(&mut campaign, &traces, 20, 1);
        // CR ACCESS must be present for OS BOOT; both areas filled.
        assert!(table
            .cell(ExitReason::CrAccess, Workload::OsBoot, SeedArea::Vmcs)
            .is_some());
        assert!(table
            .cell(ExitReason::CrAccess, Workload::OsBoot, SeedArea::Gpr)
            .is_some());
        // HLT rarely appears in a 150-exit boot slice → dash.
        let rendered = table.render();
        assert!(rendered.contains("CR ACCESS"));
        assert!(rendered.contains('-'));
    }

    #[test]
    fn parallel_table_matches_sequential() {
        let mut traces = BTreeMap::new();
        traces.insert(Workload::OsBoot, record_trace(Workload::OsBoot, 120, 42));

        let mut campaign = Campaign::new();
        let sequential = Table1::run(&mut campaign, &traces, 15, 1);
        let (parallel, report) = Table1::run_parallel(&ParallelCampaign::new(4), &traces, 15, 1);
        assert_eq!(sequential, parallel);
        assert_eq!(report.results.len(), Table1::plan(&traces, 15, 1).len());
        assert_eq!(report.corpus.observed(), campaign.corpus.observed());
        assert_eq!(report.corpus.unique(), campaign.corpus.unique());
    }
}
