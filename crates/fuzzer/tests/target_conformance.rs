//! The backend-conformance suite: every backend registered in
//! [`Backend`] must honour the [`FuzzTarget`] contract the drivers rely
//! on — deterministic boot, exact `s1` restoration on reset, reproducible
//! coverage — and must aggregate deterministically under the sharded
//! executor (jobs=1/2 byte-identical reports).
//!
//! The `for_every_backend!` macro matches exhaustively on [`Backend`], so
//! registering a new backend fails this file until the suite covers it.

use iris_core::forest::{ForestConfig, StateId};
use iris_core::trace::RecordedTrace;
use iris_fuzzer::checkpoint::GuidedCheckpoint;
use iris_fuzzer::executor::{quiet_injected_faults, FaultPlan, RunPolicy};
use iris_fuzzer::guided::{
    run_guided_shared_session, run_guided_shared_with, GuidedConfig, SharedRunOptions,
};
use iris_fuzzer::mutation::SeedArea;
use iris_fuzzer::parallel::ParallelCampaign;
use iris_fuzzer::target::{
    record_trace, Backend, BootPlan, ConfiguredBackend, FaultyHvTarget, FuzzTarget, IrisHvTarget,
    TargetFactory,
};
use iris_fuzzer::testcase::TestCase;
use iris_guest::workloads::Workload;
use iris_vtx::exit::ExitReason;
use iris_vtx::fields::VmcsField;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Run `$body` once per registered backend with `$factory` bound to that
/// backend's factory. Exhaustive over [`Backend`] by construction.
macro_rules! for_every_backend {
    (|$factory:ident, $backend:ident| $body:block) => {
        for $backend in Backend::ALL {
            match $backend {
                Backend::Iris => {
                    let $factory = IrisHvTarget::default();
                    $body
                }
                Backend::Faulty => {
                    let $factory = FaultyHvTarget::default();
                    $body
                }
            }
        }
    };
}

fn boot_trace(n: usize) -> RecordedTrace {
    record_trace(Workload::OsBoot, n, 42)
}

fn find_seed(trace: &RecordedTrace, reason: ExitReason) -> usize {
    trace
        .seeds
        .iter()
        .position(|s| s.reason == reason)
        .expect("reason present in trace")
}

/// A mutant that reliably kills the whole SUT on any backend: steering
/// the interposed exit reason into the never-configured range hits the
/// dispatcher's BUG arm.
fn hv_fatal_mutant(trace: &RecordedTrace, idx: usize) -> iris_core::seed::VmSeed {
    let mut mutant = trace.seeds[idx].clone();
    for pair in &mut mutant.reads {
        if pair.0 == VmcsField::VmExitReason {
            pair.1 = 11; // GETSEC
        }
    }
    mutant
}

#[test]
fn boot_and_submit_are_deterministic_across_instances() {
    let trace = boot_trace(120);
    let idx = find_seed(&trace, ExitReason::CrAccess);
    for_every_backend!(|factory, backend| {
        let mut a = factory.build(BootPlan::for_test_case(&trace, idx));
        let mut b = factory.build(BootPlan::for_test_case(&trace, idx));
        a.boot();
        b.boot();
        for seed in [&trace.seeds[idx], &trace.seeds[0]] {
            let out_a = a.submit(seed);
            let out_b = b.submit(seed);
            assert_eq!(
                out_a.coverage, out_b.coverage,
                "{backend:?}: twin instances diverged on coverage"
            );
            assert_eq!(
                out_a.crash, out_b.crash,
                "{backend:?}: crash verdicts diverged"
            );
            assert_eq!(
                out_a.cycles, out_b.cycles,
                "{backend:?}: cycle costs diverged"
            );
        }
    });
}

#[test]
fn reset_restores_s1_after_a_domain_crash() {
    let trace = boot_trace(120);
    let idx = find_seed(&trace, ExitReason::CrAccess);
    for_every_backend!(|factory, backend| {
        let mut target = factory.build(BootPlan::for_test_case(&trace, idx));
        target.boot();
        let baseline = target.submit(&trace.seeds[idx]);
        assert!(
            baseline.crash.is_none(),
            "{backend:?}: recorded seed crashed"
        );

        // A guest RIP in the canonical hole is a domain crash (the SUT
        // survives, so reset takes the snapshot-restore path).
        let mut mutant = trace.seeds[idx].clone();
        for pair in &mut mutant.reads {
            if pair.0 == VmcsField::GuestRip {
                pair.1 ^= 1u64 << 62;
            }
        }
        let crashed = target.submit(&mutant);
        assert!(
            crashed.crash.is_some(),
            "{backend:?}: bad-RIP mutant must crash the domain"
        );
        target.reset();
        let again = target.submit(&trace.seeds[idx]);
        assert_eq!(
            baseline.coverage, again.coverage,
            "{backend:?}: reset did not restore s1 (coverage diverged)"
        );
        assert!(again.crash.is_none(), "{backend:?}: restored s1 crashed");
    });
}

#[test]
fn reset_rebuilds_after_a_sut_fatal_crash() {
    let trace = boot_trace(120);
    let idx = find_seed(&trace, ExitReason::CrAccess);
    for_every_backend!(|factory, backend| {
        let mut target = factory.build(BootPlan::for_test_case(&trace, idx));
        target.boot();
        let baseline = target.submit(&trace.seeds[idx]);

        let crashed = target.submit(&hv_fatal_mutant(&trace, idx));
        assert_eq!(
            crashed.crash.map(|v| v.kind),
            Some(iris_fuzzer::failure::FailureKind::HypervisorCrash),
            "{backend:?}: unhandled exit reason must be SUT-fatal"
        );
        target.reset(); // full reboot path
        let again = target.submit(&trace.seeds[idx]);
        assert_eq!(
            baseline.coverage, again.coverage,
            "{backend:?}: reboot did not reproduce s1"
        );
        assert!(again.crash.is_none());
    });
}

#[test]
fn coverage_is_reproducible_and_monotone_over_a_sequence() {
    let trace = boot_trace(120);
    let idx = find_seed(&trace, ExitReason::Cpuid);
    for_every_backend!(|factory, backend| {
        let mut target = factory.build(BootPlan::for_test_case(&trace, idx));
        target.boot();
        // Same seed from the same state touches the same blocks.
        let first = target.submit(&trace.seeds[idx]);
        let second = target.submit(&trace.seeds[idx]);
        assert_eq!(
            first.coverage, second.coverage,
            "{backend:?}: identical submissions diverged"
        );

        // The union over a crash-free sequence grows monotonically.
        let mut seen = iris_hv::coverage::CoverageMap::new();
        let mut last_lines = 0u64;
        for seed in trace.seeds.iter().take(30) {
            let out = target.submit(seed);
            if out.crash.is_some() {
                target.reset();
            }
            seen.merge(&out.coverage);
            assert!(
                seen.lines() >= last_lines,
                "{backend:?}: coverage union shrank"
            );
            last_lines = seen.lines();
        }
        assert!(last_lines > 0, "{backend:?}: sequence covered nothing");
    });
}

#[test]
fn sharded_reports_are_byte_identical_for_jobs_1_and_2() {
    let trace = boot_trace(150);
    let mut plan = Vec::new();
    let mut seen = Vec::new();
    for (idx, seed) in trace.seeds.iter().enumerate() {
        if seen.contains(&seed.reason) {
            continue;
        }
        seen.push(seed.reason);
        for area in SeedArea::ALL {
            plan.push(TestCase {
                mutants: 30,
                ..TestCase::new(
                    Workload::OsBoot,
                    idx,
                    seed.reason,
                    area,
                    0xC0FFEE ^ idx as u64,
                )
            });
        }
    }
    assert!(plan.len() >= 6, "plan too small to shard meaningfully");

    for_every_backend!(|factory, backend| {
        let one = ParallelCampaign::with_factory(1, factory).run_trace(&trace, &plan);
        let two = ParallelCampaign::with_factory(2, factory).run_trace(&trace, &plan);
        assert_eq!(
            serde_json::to_string(&one).unwrap(),
            serde_json::to_string(&two).unwrap(),
            "{backend:?}: jobs=2 report diverged from jobs=1"
        );
    });
}

#[test]
fn chunked_reports_are_byte_identical_across_jobs_and_chunks() {
    // The chunked twin of the jobs=1/2 determinism case: for every
    // registered backend, the report must be byte-identical whatever
    // the (jobs, chunk) combination — chunk=1 makes every mutant its
    // own steal, chunk=usize::MAX is the whole-cell pre-chunking
    // behavior. The per-range RNG law (`rng_seed ⊕ mutant_index`) plus
    // the `(test_case_index, range_start)` merge order are what every
    // backend must therefore honour: deterministic boot and
    // history-independent submissions from the canonical state.
    let trace = boot_trace(120);
    let mut plan = Vec::new();
    for (reason, area) in [
        (ExitReason::CrAccess, SeedArea::Vmcs), // crashy cell
        (ExitReason::Cpuid, SeedArea::Gpr),
        (ExitReason::IoInstruction, SeedArea::Vmcs),
    ] {
        plan.push(TestCase {
            mutants: 45,
            ..TestCase::new(
                Workload::OsBoot,
                find_seed(&trace, reason),
                reason,
                area,
                0xFEED,
            )
        });
    }

    for_every_backend!(|factory, backend| {
        let reference = ParallelCampaign::with_factory(1, factory).run_trace(&trace, &plan);
        let baseline = serde_json::to_string(&reference).unwrap();
        for jobs in [1usize, 2] {
            for chunk in [1usize, 7, usize::MAX] {
                let report = ParallelCampaign::with_factory(jobs, factory)
                    .with_chunk(chunk)
                    .run_trace(&trace, &plan);
                assert_eq!(
                    serde_json::to_string(&report).unwrap(),
                    baseline,
                    "{backend:?}: jobs={jobs} chunk={chunk} diverged"
                );
            }
        }
    });
}

#[test]
fn guided_shared_reports_are_byte_identical_across_jobs() {
    // The generational shared-corpus engine's acceptance cross product:
    // for every registered backend, jobs ∈ {1, 2, 8} must serialize a
    // byte-identical GuidedResult (promotions, corpus order, coverage,
    // growth curve, failures, crash corpus) — jobs=1 is the reference.
    let trace = boot_trace(150);
    for_every_backend!(|factory, backend| {
        let cfg = GuidedConfig {
            budget: 250,
            generation: 48,
            rng_seed: 7,
            ..GuidedConfig::default()
        };
        let reference = run_guided_shared_with(&factory, &trace, cfg, 1);
        assert!(
            reference.promotions > 0,
            "{backend:?}: the reference run must exercise promotion"
        );
        assert!(
            reference.failures.vm_crashes + reference.failures.hv_crashes > 0,
            "{backend:?}: the reference run must exercise crash recovery"
        );
        let baseline = serde_json::to_string(&reference).unwrap();
        for jobs in [2usize, 8] {
            let r = run_guided_shared_with(&factory, &trace, cfg, jobs);
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                baseline,
                "{backend:?}: jobs={jobs} diverged from the jobs=1 reference"
            );
        }
    });
}

#[test]
fn guided_shared_forest_reports_are_byte_identical_to_forest_off() {
    // The snapshot-forest acceptance cross product: with the forest on,
    // jobs ∈ {1, 2, 8} must serialize byte-identically to the classic
    // forest-off jobs=1 reference on every registered backend — the
    // forest changes replay cost, never report bytes. cap=3 and cap=1
    // keep the LRU eviction path under pressure while doing it.
    let trace = boot_trace(150);
    for_every_backend!(|factory, backend| {
        let cfg = GuidedConfig {
            budget: 250,
            generation: 48,
            rng_seed: 7,
            ..GuidedConfig::default()
        };
        let reference = run_guided_shared_with(&factory, &trace, cfg, 1);
        assert!(
            reference.promotions > 0,
            "{backend:?}: the reference run must exercise promotion"
        );
        let baseline = serde_json::to_string(&reference).unwrap();
        for (jobs, cap) in [(1usize, ForestConfig::DEFAULT_CAP), (2, 3), (8, 1)] {
            let forest = ConfiguredBackend::new(backend).with_forest(Some(ForestConfig { cap }));
            let r = run_guided_shared_with(&forest, &trace, cfg, jobs);
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                baseline,
                "{backend:?}: forest jobs={jobs} cap={cap} diverged from the forest-off reference"
            );
        }
    });
}

#[test]
fn campaign_forest_reports_are_byte_identical_to_forest_off() {
    // The campaign twin: forest-mode prefix servers must fold to the
    // same report bytes as the classic rebuild-per-chunk path for
    // jobs ∈ {1, 2, 8}, on every registered backend, eviction pressure
    // included.
    let trace = boot_trace(120);
    let mut plan = Vec::new();
    for (reason, area) in [
        (ExitReason::CrAccess, SeedArea::Vmcs), // crashy cell
        (ExitReason::Cpuid, SeedArea::Gpr),
        (ExitReason::IoInstruction, SeedArea::Vmcs),
    ] {
        plan.push(TestCase {
            mutants: 45,
            ..TestCase::new(
                Workload::OsBoot,
                find_seed(&trace, reason),
                reason,
                area,
                0xFEED,
            )
        });
    }

    for_every_backend!(|factory, backend| {
        let baseline = serde_json::to_string(
            &ParallelCampaign::with_factory(1, factory).run_trace(&trace, &plan),
        )
        .unwrap();
        for (jobs, cap) in [(1usize, ForestConfig::DEFAULT_CAP), (2, 2), (8, 1)] {
            let forest = ConfiguredBackend::new(backend).with_forest(Some(ForestConfig { cap }));
            let report = ParallelCampaign::with_factory(jobs, forest)
                .with_chunk(7)
                .run_trace(&trace, &plan);
            assert_eq!(
                serde_json::to_string(&report).unwrap(),
                baseline,
                "{backend:?}: forest jobs={jobs} cap={cap} diverged from the forest-off reference"
            );
        }
    });
}

#[test]
fn forest_resume_interoperates_with_forest_off_checkpoints() {
    // Checkpoint fingerprints deliberately exclude the forest flag
    // (RELIABILITY.md): a run interrupted without the forest must
    // resume WITH it (and vice versa) to the same bytes as the
    // uninterrupted reference — the promotion lineage in the v2
    // checkpoint is what lets forest workers rebuild seed paths.
    use std::sync::atomic::{AtomicBool, Ordering};

    let trace = boot_trace(150);
    for_every_backend!(|factory, backend| {
        let cfg = GuidedConfig {
            budget: 250,
            generation: 48,
            rng_seed: 7,
            ..GuidedConfig::default()
        };
        let reference = run_guided_shared_with(&factory, &trace, cfg, 1);
        let baseline = serde_json::to_string(&reference).unwrap();

        // Interrupt a forest-off jobs=2 run at its second barrier…
        let stop = AtomicBool::new(false);
        let mut captured: Option<GuidedCheckpoint> = None;
        run_guided_shared_session(
            &factory,
            &trace,
            cfg,
            2,
            SharedRunOptions {
                policy: RunPolicy {
                    stop: Some(&stop),
                    ..RunPolicy::default()
                },
                resume: None,
            },
            |p| {
                captured = Some(p.checkpoint("forest-interop"));
                if p.generation >= 2 {
                    stop.store(true, Ordering::Relaxed);
                }
            },
        )
        .expect("interruption is not an error");

        // …and resume it with the forest on, under eviction pressure.
        let forest = ConfiguredBackend::new(backend).with_forest(Some(ForestConfig { cap: 2 }));
        let resumed = run_guided_shared_session(
            &forest,
            &trace,
            cfg,
            2,
            SharedRunOptions {
                policy: RunPolicy::default(),
                resume: captured,
            },
            |_| {},
        )
        .expect("resumed run completes");
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            baseline,
            "{backend:?}: forest-on resume of a forest-off checkpoint diverged"
        );
    });
}

#[test]
fn injected_worker_panics_leave_guided_results_byte_identical() {
    // The re-lease law: a worker panicking mid-generation loses its
    // claimed slot to the re-lease list, a fresh context re-runs it,
    // and — because submissions are derived from canonical target
    // state, not worker history — the jobs=2 run with three injected
    // panics still serializes byte-identically to the clean jobs=1
    // reference on every registered backend.
    quiet_injected_faults();
    let trace = boot_trace(150);
    for_every_backend!(|factory, backend| {
        let cfg = GuidedConfig {
            budget: 250,
            generation: 48,
            rng_seed: 7,
            ..GuidedConfig::default()
        };
        let reference = run_guided_shared_with(&factory, &trace, cfg, 1);
        let baseline = serde_json::to_string(&reference).unwrap();

        // Two slot-indexed faults (tripping in the first batch that
        // reaches them) plus one claim-ordinal fault mid-batch.
        let faults = FaultPlan::new()
            .panic_once_at(3)
            .panic_once_at(17)
            .panic_at_claim(10);
        let options = SharedRunOptions {
            policy: RunPolicy {
                faults: Some(&faults),
                ..RunPolicy::default()
            },
            resume: None,
        };
        let r = run_guided_shared_session(&factory, &trace, cfg, 2, options, |_| {})
            .expect("panics within the restart budget are absorbed");
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            baseline,
            "{backend:?}: injected worker panics changed the guided result"
        );
    });
}

/// One shared trace for the proptest cases — recording is the expensive
/// part, and every case reads it immutably.
fn proptest_trace() -> &'static RecordedTrace {
    static TRACE: OnceLock<RecordedTrace> = OnceLock::new();
    TRACE.get_or_init(|| boot_trace(120))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The generational promotion-merge protocol is
    /// partition-independent: for arbitrary (jobs, generation size,
    /// budget, rng seed) — generation=1 makes every slot its own sync
    /// point, budgets that are not generation multiples exercise the
    /// ragged final generation — the shared-mode GuidedResult
    /// serializes byte-identically to the jobs=1 reference on every
    /// registered backend.
    #[test]
    fn generational_promotion_merge_is_partition_independent(
        jobs in 2usize..6,
        generation in 1u64..40,
        budget in 0u64..120,
        rng_seed in any::<u64>(),
    ) {
        let trace = proptest_trace();
        for_every_backend!(|factory, backend| {
            let cfg = GuidedConfig {
                budget,
                generation,
                rng_seed,
                ..GuidedConfig::default()
            };
            let reference = run_guided_shared_with(&factory, trace, cfg, 1);
            let sharded = run_guided_shared_with(&factory, trace, cfg, jobs);
            let sharded = serde_json::to_string(&sharded).expect("serializes");
            let reference = serde_json::to_string(&reference).expect("serializes");
            prop_assert!(
                sharded == reference,
                "{backend:?}: jobs={jobs} generation={generation} budget={budget} \
                 diverged from the jobs=1 reference"
            );
        });
    }

    /// Arbitrary forest shapes restore byte-identically to a fresh
    /// rebuild from s1: a random walk of submissions, pins, and
    /// restores — depth and branching driven by the action list, LRU
    /// eviction by the tight cap — must leave every surviving node
    /// restoring to exactly the state a forest-off target reaches by
    /// replaying that node's seed path from s1, on every registered
    /// backend. (Node state is pure in the path; the delta encoding is
    /// invisible.)
    #[test]
    fn forest_shapes_restore_byte_identically_to_rebuild_from_s1(
        actions in proptest::collection::vec(any::<u8>(), 1..24),
        cap in 1usize..5,
    ) {
        let trace = proptest_trace();
        for_every_backend!(|factory, backend| {
            let forest_factory =
                ConfiguredBackend::new(backend).with_forest(Some(ForestConfig { cap }));
            let mut target = forest_factory.build(BootPlan {
                trace,
                prefix: 0,
                fast_forward: false,
            });
            target.boot();
            // The model: each pin's seed path from s1, mirrored by the
            // walk. A crash resets to the root (the empty path), like
            // the drivers do.
            let mut path: Vec<usize> = Vec::new();
            let mut pins: Vec<(StateId, Vec<usize>)> = Vec::new();
            for &a in &actions {
                match a % 3 {
                    0 => {
                        let k = (a as usize / 3) % trace.seeds.len().min(40);
                        if target.submit(&trace.seeds[k]).crash.is_some() {
                            target.reset();
                            path.clear();
                        } else {
                            path.push(k);
                        }
                    }
                    1 => {
                        if let Some(id) = target.pin_state() {
                            pins.push((id, path.clone()));
                        }
                    }
                    _ => {
                        if pins.is_empty() {
                            target.reset();
                            path.clear();
                        } else {
                            let pick = (a as usize / 3) % pins.len();
                            let (id, p) = pins[pick].clone();
                            if target.reset_to(id) {
                                path = p;
                            } else {
                                // Evicted under the tight cap — fall
                                // back to the root, dropping the stale
                                // pin from the model.
                                pins.remove(pick);
                                target.reset();
                                path.clear();
                            }
                        }
                    }
                }
            }
            // Every pin that still restores must match the fresh
            // rebuild-from-s1 reference for its path, probed by a
            // submission from the restored state.
            for (id, p) in pins {
                if !target.reset_to(id) {
                    continue; // evicted — nothing to compare
                }
                let probe = target.submit(&trace.seeds[0]);

                let mut fresh = factory.build(BootPlan {
                    trace,
                    prefix: 0,
                    fast_forward: false,
                });
                fresh.boot();
                for &k in &p {
                    let out = fresh.submit(&trace.seeds[k]);
                    prop_assert!(
                        out.crash.is_none(),
                        "{backend:?}: model path replay crashed — walk bookkeeping is wrong"
                    );
                }
                let reference = fresh.submit(&trace.seeds[0]);
                prop_assert!(
                    probe.coverage == reference.coverage
                        && probe.crash == reference.crash
                        && probe.cycles == reference.cycles,
                    "{backend:?}: cap={cap} node {id:?} (path {p:?}) diverged from \
                     the rebuild-from-s1 reference"
                );
            }
        });
    }

    /// Interrupt-then-resume is exact at every generation barrier: for
    /// arbitrary (jobs, generation size, budget, interruption point) —
    /// including stops after the final barrier, i.e. resuming an
    /// already-complete checkpoint — capturing the barrier checkpoint,
    /// stopping cooperatively, and resuming from it serializes
    /// byte-identically to the uninterrupted jobs=1 reference on every
    /// registered backend.
    #[test]
    fn interrupt_at_any_barrier_then_resume_is_byte_identical(
        jobs in 1usize..4,
        generation in 1u64..24,
        budget in 1u64..80,
        stop_after in 0usize..6,
        rng_seed in any::<u64>(),
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};

        let trace = proptest_trace();
        for_every_backend!(|factory, backend| {
            let cfg = GuidedConfig {
                budget,
                generation,
                rng_seed,
                ..GuidedConfig::default()
            };
            let reference = run_guided_shared_with(&factory, trace, cfg, 1);
            let reference = serde_json::to_string(&reference).expect("serializes");

            // First leg: capture the checkpoint at every barrier (the
            // newest one mirrors what a durable writer would hold) and
            // trip the stop flag once `stop_after` generations are in.
            let stop = AtomicBool::new(false);
            let mut captured: Option<GuidedCheckpoint> = None;
            let first = run_guided_shared_session(
                &factory,
                trace,
                cfg,
                jobs,
                SharedRunOptions {
                    policy: RunPolicy { stop: Some(&stop), ..RunPolicy::default() },
                    resume: None,
                },
                |p| {
                    captured = Some(p.checkpoint("prop-fingerprint"));
                    if p.generation >= stop_after {
                        stop.store(true, Ordering::Relaxed);
                    }
                },
            )
            .expect("interruption is not an error");
            prop_assert!(
                first.executions <= budget,
                "{backend:?}: interrupted leg overran its budget"
            );

            // Second leg: resume from the captured barrier state.
            let resumed = run_guided_shared_session(
                &factory,
                trace,
                cfg,
                jobs,
                SharedRunOptions { policy: RunPolicy::default(), resume: captured },
                |_| {},
            )
            .expect("resumed run completes");
            let resumed = serde_json::to_string(&resumed).expect("serializes");
            prop_assert!(
                resumed == reference,
                "{backend:?}: jobs={jobs} generation={generation} budget={budget} \
                 stop_after={stop_after} — interrupt+resume diverged from the \
                 uninterrupted jobs=1 reference"
            );
        });
    }
}

#[test]
fn planted_faults_fire_only_on_the_faulty_backend() {
    let trace = boot_trace(200);
    // One cell per planted defect: (CPUID, GPR) reaches the reserved-leaf
    // BUG, (CR ACCESS, VMCS) the qualification pointer, (I/O, VMCS) the
    // DMA window.
    let plan = vec![
        TestCase {
            mutants: 150,
            ..TestCase::new(
                Workload::OsBoot,
                find_seed(&trace, ExitReason::Cpuid),
                ExitReason::Cpuid,
                SeedArea::Gpr,
                7,
            )
        },
        TestCase {
            mutants: 150,
            ..TestCase::new(
                Workload::OsBoot,
                find_seed(&trace, ExitReason::CrAccess),
                ExitReason::CrAccess,
                SeedArea::Vmcs,
                7,
            )
        },
        TestCase {
            mutants: 150,
            ..TestCase::new(
                Workload::OsBoot,
                find_seed(&trace, ExitReason::IoInstruction),
                ExitReason::IoInstruction,
                SeedArea::Vmcs,
                7,
            )
        },
    ];

    let faulty =
        ParallelCampaign::with_factory(2, FaultyHvTarget::default()).run_trace(&trace, &plan);
    let detections = iris_fuzzer::target::detect_planted_faults(&faulty.corpus);
    for (fault, hit) in &detections {
        assert!(
            hit.is_some(),
            "faulty backend: campaign missed the planted fault {:?}",
            fault.name
        );
    }

    let stock = ParallelCampaign::with_factory(2, IrisHvTarget::default()).run_trace(&trace, &plan);
    assert!(
        stock
            .corpus
            .crashes
            .iter()
            .all(|c| !c.console.contains("planted")),
        "stock backend must not exhibit planted-fault banners"
    );
}
