//! Property-based tests over the core data structures and invariants.

use iris_core::seed::{VmSeed, MAX_VMCS_OPS};
use iris_fuzzer::mutation::{mutate, AppliedMutation, SeedArea};
use iris_hv::coverage::{Block, Component, CoverageMap};
use iris_vtx::cr::{Cr0, OperatingMode};
use iris_vtx::exit::{CrAccessQual, EptQual, ExitReason, IoQual};
use iris_vtx::fields::VmcsField;
use iris_vtx::gpr::{Gpr, GprSet};
use iris_vtx::vmcs::Vmcs;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn arb_field() -> impl Strategy<Value = VmcsField> {
    (0..VmcsField::ALL.len()).prop_map(|i| VmcsField::ALL[i])
}

fn arb_reason() -> impl Strategy<Value = ExitReason> {
    (0..ExitReason::FIGURE_REASONS.len()).prop_map(|i| ExitReason::FIGURE_REASONS[i])
}

fn arb_seed() -> impl Strategy<Value = VmSeed> {
    (
        arb_reason(),
        proptest::collection::vec((arb_field(), any::<u64>()), 0..MAX_VMCS_OPS),
        proptest::collection::vec(any::<u64>(), Gpr::COUNT),
    )
        .prop_map(|(reason, reads, gprs)| {
            let mut s = VmSeed::new(reason);
            for (f, v) in reads {
                s.push_read(f, v);
            }
            let mut set = GprSet::new();
            for (g, v) in Gpr::ALL.iter().zip(gprs) {
                set.set(*g, v);
            }
            s.gprs = set;
            s
        })
}

proptest! {
    /// The seed wire format round-trips for every well-formed seed.
    #[test]
    fn seed_codec_round_trips(seed in arb_seed()) {
        let decoded = VmSeed::decode(&seed.encode()).expect("decodes");
        prop_assert_eq!(decoded, seed);
    }

    /// Seed payloads never exceed the paper's 470-byte pre-allocation.
    #[test]
    fn seed_payload_bounded(seed in arb_seed()) {
        prop_assert!(seed.payload_bytes() <= 470);
    }

    /// VMCS writes are width-truncating and idempotent; reads never
    /// observe bits a field cannot hold.
    #[test]
    fn vmcs_width_truncation(field in arb_field(), value in any::<u64>()) {
        let mut v = Vmcs::new(0x1000);
        v.hw_write(field, value);
        let read = v.read(field).unwrap();
        prop_assert_eq!(read, value & field.value_mask());
        v.hw_write(field, read);
        prop_assert_eq!(v.read(field).unwrap(), read);
    }

    /// Read-only classification matches the architectural area encoding
    /// and VMWRITE honours it.
    #[test]
    fn vmcs_read_only_rejection(field in arb_field(), value in any::<u64>()) {
        let mut v = Vmcs::new(0x1000);
        let result = v.write(field, value);
        prop_assert_eq!(result.is_err(), field.is_read_only());
    }

    /// Qualification encodings round-trip.
    #[test]
    fn cr_qual_round_trip(cr in prop_oneof![Just(0u8), Just(3), Just(4), Just(8)],
                          ty in 0u8..4, op in 0u8..16, lmsw in any::<u16>()) {
        let access = match ty {
            0 => iris_vtx::exit::CrAccessType::MovToCr,
            1 => iris_vtx::exit::CrAccessType::MovFromCr,
            2 => iris_vtx::exit::CrAccessType::Clts,
            _ => iris_vtx::exit::CrAccessType::Lmsw,
        };
        let q = CrAccessQual {
            cr,
            access,
            gpr: Gpr::from_mov_cr_operand(op),
            lmsw_source: lmsw,
        };
        prop_assert_eq!(CrAccessQual::decode(q.encode()), q);
    }

    /// I/O qualifications round-trip for all legal sizes.
    #[test]
    fn io_qual_round_trip(size in prop_oneof![Just(1u8), Just(2), Just(4)],
                          dir in any::<bool>(), string in any::<bool>(),
                          rep in any::<bool>(), port in any::<u16>()) {
        let q = IoQual {
            size,
            direction: if dir { iris_vtx::exit::IoDirection::In } else { iris_vtx::exit::IoDirection::Out },
            string,
            rep,
            port,
        };
        prop_assert_eq!(IoQual::decode(q.encode()), q);
    }

    /// EPT qualifications round-trip.
    #[test]
    fn ept_qual_round_trip(bits in 0u8..128) {
        let q = EptQual {
            read: bits & 1 != 0,
            write: bits & 2 != 0,
            exec: bits & 4 != 0,
            gpa_readable: bits & 8 != 0,
            gpa_writable: bits & 16 != 0,
            gpa_executable: bits & 32 != 0,
            linear_valid: bits & 64 != 0,
        };
        prop_assert_eq!(EptQual::decode(q.encode()), q);
    }

    /// The CR0 mode classification is total and stable under
    /// irrelevant-bit changes.
    #[test]
    fn mode_classification_total(value in any::<u64>()) {
        let mode = Cr0(value).operating_mode();
        prop_assert!(OperatingMode::ALL.contains(&mode));
        // Bits outside PE/PG/AM/TS/CD never change the mode.
        use iris_vtx::cr::cr0;
        let relevant = cr0::PE | cr0::PG | cr0::AM | cr0::TS | cr0::CD;
        let other = Cr0((value & relevant) | (!value & !relevant & cr0::DEFINED));
        prop_assert_eq!(mode, other.operating_mode());
    }

    /// The dense field index round-trips for every enumerated field and
    /// stays within one byte (the seed codec's encoding byte).
    #[test]
    fn vmcs_field_index_round_trips(i in 0..VmcsField::ALL.len()) {
        let field = VmcsField::ALL[i];
        let idx = field.index();
        prop_assert_eq!(idx as usize, i);
        prop_assert_eq!(VmcsField::from_index(idx), Some(field));
        prop_assert_eq!(field.compact_index(), idx);
        prop_assert_eq!(VmcsField::from_compact_index(idx), Some(field));
    }

    /// The dense bitmap CoverageMap matches a BTreeMap reference model:
    /// `lines`, `merge`, `new_lines_from`, `symmetric_diff_lines`,
    /// `contains`, per-component sums, and the serde round trip.
    #[test]
    fn coverage_bitmap_matches_btreemap_model(
        left in proptest::collection::vec((0usize..12, 0u16..256, 1u32..40), 0..60),
        right in proptest::collection::vec((0usize..12, 0u16..256, 1u32..40), 0..60),
    ) {
        use std::collections::BTreeMap;

        let build = |hits: &[(usize, u16, u32)]| {
            let mut map = CoverageMap::new();
            let mut model: BTreeMap<Block, u64> = BTreeMap::new();
            for &(c, id, loc) in hits {
                let block = Block::new(Component::ALL[c], id);
                map.hit(block, loc);
                model.entry(block).or_insert(u64::from(loc)); // first weight wins
            }
            (map, model)
        };
        let (mut a, model_a) = build(&left);
        let (b, model_b) = build(&right);

        let model_lines = |m: &BTreeMap<Block, u64>| m.values().sum::<u64>();
        prop_assert_eq!(a.lines(), model_lines(&model_a));
        prop_assert_eq!(a.block_count(), model_a.len());
        for &component in Component::ALL {
            let per: u64 = model_a
                .iter()
                .filter(|(blk, _)| blk.component == component)
                .map(|(_, l)| *l)
                .sum();
            prop_assert_eq!(a.lines_in(component), per);
        }
        for blk in model_b.keys() {
            prop_assert_eq!(a.contains(*blk), model_a.contains_key(blk));
        }

        let new_from_b: u64 = model_b
            .iter()
            .filter(|(blk, _)| !model_a.contains_key(blk))
            .map(|(_, l)| *l)
            .sum();
        prop_assert_eq!(a.new_lines_from(&b), new_from_b);
        let new_from_a: u64 = model_a
            .iter()
            .filter(|(blk, _)| !model_b.contains_key(blk))
            .map(|(_, l)| *l)
            .sum();
        prop_assert_eq!(a.symmetric_diff_lines(&b), new_from_a + new_from_b);

        // Serde round trip preserves the exact block/weight set.
        let json = serde_json::to_string(&a).expect("serializes");
        let back: CoverageMap = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(&back, &a);

        // Merge matches the model union (first weight wins on collisions,
        // matching the old BTreeMap entry().or_insert semantics).
        let mut merged_model = model_a.clone();
        for (blk, l) in &model_b {
            merged_model.entry(*blk).or_insert(*l);
        }
        a.merge(&b);
        prop_assert_eq!(a.lines(), model_lines(&merged_model));
        prop_assert_eq!(a.block_count(), merged_model.len());
        let pairs: Vec<(Block, u32)> = a.iter().collect();
        prop_assert_eq!(pairs.len(), merged_model.len());
        for (blk, l) in pairs {
            prop_assert_eq!(merged_model.get(&blk), Some(&u64::from(l)));
        }
    }

    /// Sharding a hit stream across N workers and folding the per-worker
    /// maps word-wise reproduces the sequential run's map exactly — the
    /// invariant `ParallelCampaign`'s aggregator rests on. Holds for any
    /// shard assignment and any fold order.
    #[test]
    fn sharded_coverage_merge_equals_sequential(
        hits in proptest::collection::vec((0usize..12, 0u16..256), 0..80),
        jobs in 1usize..8,
    ) {
        let mut sequential = CoverageMap::new();
        let mut shards = vec![CoverageMap::new(); jobs];
        for (i, &(c, id)) in hits.iter().enumerate() {
            let block = Block::new(Component::ALL[c], id);
            // LOC weights are static per block in the real system (each
            // `cov!` site always reports the same weight), so derive the
            // weight from the block identity.
            let loc = u32::from(id) % 39 + 1;
            sequential.hit(block, loc);
            shards[i % jobs].hit(block, loc);
        }
        prop_assert_eq!(&CoverageMap::merged(shards.iter()), &sequential);
        // Completion order must not matter to the aggregator.
        prop_assert_eq!(&CoverageMap::merged(shards.iter().rev()), &sequential);
    }

    /// Coverage-map merge is monotone and idempotent; line counts never
    /// double-count blocks.
    #[test]
    fn coverage_merge_monotone(hits in proptest::collection::vec((0u16..64, 1u32..20), 1..40)) {
        let mut a = CoverageMap::new();
        for &(id, loc) in &hits[..hits.len() / 2] {
            a.hit(Block::new(Component::Vmx, id), loc);
        }
        let mut b = CoverageMap::new();
        for &(id, loc) in &hits[hits.len() / 2..] {
            b.hit(Block::new(Component::Vmx, id), loc);
        }
        let before = a.lines();
        let gain = a.new_lines_from(&b);
        a.merge(&b);
        prop_assert_eq!(a.lines(), before + gain);
        // Idempotent.
        let after = a.lines();
        a.merge(&b);
        prop_assert_eq!(a.lines(), after);
        prop_assert_eq!(a.new_lines_from(&b), 0);
    }

    /// A mutation flips exactly one bit in exactly one place, and the
    /// mutant still encodes/decodes.
    #[test]
    fn mutation_flips_one_bit(seed in arb_seed(), area_sel in any::<bool>(), rng_seed in any::<u64>()) {
        let area = if area_sel { SeedArea::Vmcs } else { SeedArea::Gpr };
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let (mutant, applied) = mutate(&seed, area, &mut rng);
        match applied {
            None => prop_assert_eq!(&mutant, &seed),
            Some(AppliedMutation::VmcsBitFlip { index, bit }) => {
                prop_assert_eq!(mutant.reads[index].1 ^ seed.reads[index].1, 1u64 << bit);
                prop_assert_eq!(&mutant.gprs, &seed.gprs);
            }
            Some(AppliedMutation::GprBitFlip { gpr, bit }) => {
                prop_assert_eq!(mutant.gprs.get(gpr) ^ seed.gprs.get(gpr), 1u64 << bit);
                prop_assert_eq!(&mutant.reads, &seed.reads);
            }
        }
        let round = VmSeed::decode(&mutant.encode()).expect("mutants stay well-formed");
        prop_assert_eq!(round, mutant);
    }

    /// VM-entry checks are a pure function of the VMCS: same state, same
    /// verdict (determinism matters for replay).
    #[test]
    fn entry_checks_deterministic(rip in any::<u64>(), rflags in any::<u64>(), cr0 in any::<u64>()) {
        let mut v = Vmcs::new(0x2000);
        iris_vtx::entry_checks::init_real_mode_guest_state(&mut v);
        v.hw_write(VmcsField::GuestRip, rip);
        v.hw_write(VmcsField::GuestRflags, rflags);
        v.hw_write(VmcsField::GuestCr0, cr0);
        let first = iris_vtx::entry_checks::check_guest_state(&v);
        let second = iris_vtx::entry_checks::check_guest_state(&v);
        prop_assert_eq!(first, second);
    }
}

/// The recorded substrate the mutant-range partition property fuzzes
/// over — recorded once, shared across cases.
fn partition_trace() -> &'static iris_core::trace::RecordedTrace {
    static TRACE: OnceLock<iris_core::trace::RecordedTrace> = OnceLock::new();
    TRACE.get_or_init(|| {
        iris_fuzzer::target::record_trace(iris_guest::workloads::Workload::OsBoot, 120, 42)
    })
}

proptest! {
    // Each case boots one target per chunk, so keep the case count
    // modest — the partition space is low-dimensional anyway.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The per-range RNG law, stated as a property: for an **arbitrary**
    /// partition of a test case's mutant range into chunks, the merged
    /// `TestCaseResult` (coverage, stats, corpus — compared on
    /// serialized JSON) is byte-identical to the unchunked sequential
    /// run. This is the invariant `ParallelCampaign`'s chunk-granular
    /// work stealing rests on.
    #[test]
    fn chunked_partition_matches_unchunked(
        lens in proptest::collection::vec(1usize..12, 1..8),
        vmcs_area in any::<bool>(),
        rng_seed in any::<u64>(),
    ) {
        use iris_fuzzer::campaign::{assemble_test_case, run_mutant_range_with, run_test_case_with};
        use iris_fuzzer::corpus::Corpus;
        use iris_fuzzer::target::IrisHvTarget;
        use iris_fuzzer::testcase::{MutantRange, TestCase};

        let trace = partition_trace();
        let (reason, area) = if vmcs_area {
            (ExitReason::CrAccess, SeedArea::Vmcs) // crash-heavy cell
        } else {
            (ExitReason::Cpuid, SeedArea::Gpr) // coverage-heavy cell
        };
        let seed_index = trace
            .seeds
            .iter()
            .position(|s| s.reason == reason)
            .expect("reason present in the boot trace");
        let tc = TestCase {
            mutants: lens.iter().sum(),
            ..TestCase::new(
                iris_guest::workloads::Workload::OsBoot,
                seed_index,
                reason,
                area,
                rng_seed,
            )
        };
        let factory = IrisHvTarget::default();

        // Unchunked sequential reference.
        let mut ref_corpus = Corpus::new();
        let (ref_result, ref_cov) = run_test_case_with(&factory, &mut ref_corpus, trace, &tc);

        // The arbitrary partition, chunk by chunk on fresh targets.
        let mut outputs = Vec::new();
        let mut start = 0usize;
        for len in lens {
            outputs.push(run_mutant_range_with(&factory, trace, &tc, MutantRange { start, len }));
            start += len;
        }
        let mut corpus = Corpus::new();
        let (result, cov) = assemble_test_case(&tc, outputs, &mut corpus);

        prop_assert_eq!(
            serde_json::to_string(&result).expect("serializes"),
            serde_json::to_string(&ref_result).expect("serializes")
        );
        prop_assert_eq!(&cov, &ref_cov);
        prop_assert_eq!(
            serde_json::to_string(&corpus).expect("serializes"),
            serde_json::to_string(&ref_corpus).expect("serializes")
        );
    }
}

/// Workload generation is a pure function of (kind, count, seed).
#[test]
fn workload_generation_deterministic() {
    use iris_guest::workloads::Workload;
    for w in Workload::ALL {
        assert_eq!(w.generate(64, 3), w.generate(64, 3));
        assert_ne!(
            w.generate(64, 3),
            w.generate(64, 4),
            "{w:?} must vary with the seed"
        );
    }
}
