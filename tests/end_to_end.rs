//! Cross-crate integration: the full IRIS pipeline from workload
//! generation through recording, persistence, replay, and fuzzing.

use iris_core::manager::{IrisManager, Mode};
use iris_core::metrics;
use iris_core::record::RecordConfig;
use iris_core::seed_db::SeedDb;
use iris_fuzzer::campaign::Campaign;
use iris_fuzzer::mutation::SeedArea;
use iris_fuzzer::testcase::TestCase;
use iris_guest::workloads::Workload;
use iris_vtx::exit::ExitReason;

#[test]
fn record_persist_reload_replay() {
    let mut mgr = IrisManager::new(32 << 20);
    let ops = Workload::OsBoot.generate(400, 42);
    mgr.record("OS BOOT", ops, RecordConfig::default());
    let recorded = mgr.db.get("OS BOOT").unwrap().clone();

    // Persist seeds in the binary wire format, reload, and replay the
    // reloaded copy — the DB round trip must not change behavior.
    let dir = std::env::temp_dir().join("iris-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("osboot.seeds");
    SeedDb::save_seeds_binary(&recorded, &path).unwrap();
    let reloaded = SeedDb::load_seeds_binary("OS BOOT", &path).unwrap();
    assert_eq!(reloaded.seeds, recorded.seeds);

    mgr.db.insert(reloaded);
    let replayed = mgr.replay("OS BOOT", Mode::ReplayWithMetrics, false);
    assert_eq!(replayed.metrics.len(), 400);
    let fit = metrics::coverage_fitting(&recorded, &replayed);
    assert!(
        fit.fitting_percent > 85.0,
        "fitting {}",
        fit.fitting_percent
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_five_workloads_record_and_replay() {
    for w in Workload::ALL {
        let mut mgr = IrisManager::new(32 << 20);
        if w != Workload::OsBoot {
            mgr.boot_test_vm();
        }
        let ops = w.generate(150, 9);
        mgr.record(w.label(), ops, RecordConfig::default());
        let replayed = mgr.replay(w.label(), Mode::ReplayWithMetrics, true);
        assert_eq!(replayed.metrics.len(), 150, "{w:?} replay completed");
        assert!(
            !replayed.metrics.last().unwrap().crashed,
            "{w:?} replay must not crash with baseline revert"
        );
    }
}

#[test]
fn replayed_seeds_follow_recorded_reasons_exactly() {
    let mut mgr = IrisManager::new(32 << 20);
    mgr.boot_test_vm();
    let ops = Workload::IoBound.generate(200, 5);
    mgr.record("IO-bound", ops, RecordConfig::default());
    let recorded = mgr.db.get("IO-bound").unwrap().clone();
    let replayed = mgr.replay("IO-bound", Mode::ReplayWithMetrics, true);
    for (r, p) in recorded.metrics.iter().zip(&replayed.metrics) {
        assert_eq!(r.reason, p.reason);
    }
}

#[test]
fn fuzzing_on_top_of_replayed_state() {
    // The complete §VII loop: record, pick a target, replay-to-state,
    // mutate, observe.
    let mut mgr = IrisManager::new(32 << 20);
    let ops = Workload::OsBoot.generate(200, 42);
    mgr.record("OS BOOT", ops, RecordConfig::default());
    let trace = mgr.db.get("OS BOOT").unwrap().clone();

    let idx = trace
        .seeds
        .iter()
        .position(|s| s.reason == ExitReason::IoInstruction)
        .expect("boot has I/O seeds");
    let tc = TestCase {
        mutants: 80,
        ..TestCase::new(
            Workload::OsBoot,
            idx,
            ExitReason::IoInstruction,
            SeedArea::Vmcs,
            3,
        )
    };
    let mut campaign = Campaign::new();
    let r = campaign.run_test_case(&trace, &tc);
    assert_eq!(r.failures.submitted, 80);
    assert!(r.baseline_lines > 0);
    // Flipping the I/O qualification reaches other ports/directions.
    assert!(r.new_lines > 0);
    // Crash corpus entries replay deterministically: resubmit one and
    // observe a crash again.
    if let Some(record) = campaign.corpus.crashes.first() {
        let mut mgr2 = IrisManager::new(32 << 20);
        mgr2.db.insert(trace.clone());
        mgr2.replay("OS BOOT", Mode::Replay, false);
        let out = mgr2.submit_crafted(&record.seed);
        assert!(out.exit.crash.is_some(), "saved crash seed must reproduce");
    }
}

#[test]
fn hypervisor_crash_stops_the_world_and_is_classified() {
    use iris_core::seed::VmSeed;
    let mut mgr = IrisManager::new(32 << 20);
    // Craft a seed whose (read-only) exit-reason field names an exit the
    // hypervisor never configured: the dispatch BUGs.
    let mut evil = VmSeed::new(ExitReason::Cpuid);
    evil.push_read(VmcsField_VM_EXIT_REASON(), 11); // GETSEC
    let out = mgr.submit_crafted(&evil);
    assert!(matches!(
        out.exit.crash,
        Some(iris_hv::crash::Crash::Hypervisor(_))
    ));
    assert!(!mgr.hv.is_alive());
    assert!(mgr.hv.log.grep("FATAL").count() > 0);
}

// Small helper so the test reads like the seed the fuzzer would build.
#[allow(non_snake_case)]
fn VmcsField_VM_EXIT_REASON() -> iris_vtx::fields::VmcsField {
    iris_vtx::fields::VmcsField::VmExitReason
}
