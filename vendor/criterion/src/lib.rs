//! Offline stand-in for `criterion`: a small timing harness with the
//! same call surface (`criterion_group!`/`criterion_main!`, benchmark
//! groups, throughput annotations). Measurements are wall-clock means
//! over an adaptively chosen iteration count; `--test` runs every
//! benchmark body once as a smoke test.
//!
//! Beyond the upstream surface, every completed benchmark is also
//! recorded in a process-wide registry ([`take_measurements`]) so bench
//! bins with a hand-written `main` can post-process results — e.g. emit
//! machine-readable JSON for trajectory tracking.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed benchmark measurement, as recorded in the registry.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The printed `group/id` label.
    pub label: String,
    /// Mean wall-clock nanoseconds per iteration (0.0 in `--test` mode).
    pub mean_ns: f64,
    /// Per-iteration element count, when the group declared
    /// [`Throughput::Elements`].
    pub elements: Option<u64>,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drain every measurement recorded so far, in completion order.
#[must_use]
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut *MEASUREMENTS.lock().expect("measurement registry poisoned"))
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);

/// Benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Work-per-iteration annotation, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Time a closure. Runs it once in `--test` mode.
    // The bench harness is the one legitimate wall-clock consumer in
    // the workspace; everything else is covered by the clippy.toml ban.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean_ns = 0.0;
            return;
        }
        // Warm-up and calibration: find an iteration count that fills
        // the target window.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// The harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(self.test_mode, None, &id.into().0, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup {
    name: String,
    test_mode: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(
            self.test_mode,
            Some(&self.name),
            &id.into().0,
            self.throughput,
            f,
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            self.test_mode,
            Some(&self.name),
            &id.0,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    test_mode: bool,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    let mut b = Bencher {
        test_mode,
        mean_ns: f64::NAN,
    };
    f(&mut b);
    let elements = match throughput {
        Some(Throughput::Elements(n)) => Some(n),
        _ => None,
    };
    if test_mode {
        println!("bench {label}: ok (smoke)");
        record(&label, 0.0, elements);
        return;
    }
    if b.mean_ns.is_nan() {
        println!("bench {label}: no measurement (b.iter never called)");
        return;
    }
    record(&label, b.mean_ns, elements);
    let mut line = format!("bench {label}: {} /iter", fmt_ns(b.mean_ns));
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / (b.mean_ns / 1e9);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  ({:.0} elem/s)", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  ({:.1} MiB/s)", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

fn record(label: &str, mean_ns: f64, elements: Option<u64>) {
    MEASUREMENTS
        .lock()
        .expect("measurement registry poisoned")
        .push(Measurement {
            label: label.to_owned(),
            mean_ns,
            elements,
        });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
