//! Offline stand-in for the `bytes` crate: just enough of
//! `Bytes`/`BytesMut`/`Buf`/`BufMut` for the IRIS seed codec.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Copy into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Write-side cursor operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor operations.
///
/// # Panics
/// The `get_*` methods panic when the buffer holds fewer bytes than the
/// read requires, mirroring the real crate; callers check `remaining()`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy out `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}
