//! Offline stand-in for `proptest`: deterministic strategies and a
//! `proptest!` runner covering the subset this workspace uses
//! (`any`, integer ranges, `Just`, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `prop_assert!`/`prop_assert_eq!`).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each property as a `#[test]`, drawing deterministic random cases
/// (`ProptestConfig::default().cases` unless an inner
/// `#![proptest_config(...)]` overrides it).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with ($cfg) $($rest)* }
    };
    (@with ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property {} failed on case {}: {}",
                               stringify!($name), __case, e.0);
                    }
                }
            }
        )+
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Property-style assertion: fails the current case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Property-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Property-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
