//! Deterministic case generation for the `proptest!` runner.

/// Cases drawn per property. Deliberately modest: properties here are
/// smoke-level invariants, and the whole suite must stay fast.
pub const CASES: u32 = 96;

/// Per-property runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases drawn per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

impl ProptestConfig {
    /// A configuration drawing `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carried back to the runner, which panics with
/// context).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The random stream behind strategies: SplitMix64 seeded from the test
/// name, so every run of a property is reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic stream for a named test.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}
