//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// Generates values of one type from a random stream.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choice over the given options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Full-range values of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over every value of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}
