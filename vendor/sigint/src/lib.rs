//! Offline stand-in for the `ctrlc` crate: a minimal SIGINT-to-flag
//! bridge for cooperative shutdown.
//!
//! [`install`] registers a `SIGINT` handler (once) whose only action is
//! an atomic store into a process-wide flag — the sole async-signal-safe
//! operation a Rust signal handler can rely on — and returns the flag
//! for the application to poll at its cancellation points. On the first
//! `SIGINT` the handler also resets the disposition to `SIG_DFL`, so a
//! second Ctrl-C terminates the process the classic way instead of
//! being swallowed by a run that is slow to wind down.
//!
//! On non-Unix targets [`install`] degrades gracefully: it returns the
//! same flag, which then simply never trips.
//!
//! This is the one vendored crate that needs `unsafe` (the `signal(2)`
//! FFI call); every product crate in the workspace stays
//! `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// The process-wide interruption flag; set by the first `SIGINT` after
/// [`install`].
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, STOP};

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        // `signal(2)`: declared by hand because the workspace is
        // air-gapped and does not carry the `libc` crate. The handler
        // slot is a plain function-pointer-sized integer so `SIG_DFL`
        // (0) and a real handler share one type.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // An atomic store is async-signal-safe; nothing else here is
        // allowed to allocate, lock, or call back into Rust runtime
        // machinery.
        STOP.store(true, Ordering::SeqCst);
        // Restore the default disposition so a second Ctrl-C kills the
        // process even if the cooperative shutdown stalls.
        // SAFETY: `signal(2)` is async-signal-safe and may be called
        // from a handler; `SIG_DFL` (0) is a valid disposition value.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub(super) fn install_handler() {
        // SAFETY: `on_sigint` is an `extern "C"` fn whose address is a
        // valid handler; it performs only async-signal-safe work (one
        // atomic store and a `signal` call), as `signal(2)` requires.
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install_handler() {}
}

/// Install the `SIGINT` handler (idempotent) and return the flag it
/// trips. Poll the flag with `Ordering::Relaxed` at cancellation
/// points; it latches and is never cleared.
pub fn install() -> &'static AtomicBool {
    static ONCE: Once = Once::new();
    ONCE.call_once(imp::install_handler);
    &STOP
}

/// The flag [`install`] returns, without installing the handler — for
/// code that only observes an interruption requested elsewhere.
#[must_use]
pub fn stop_flag() -> &'static AtomicBool {
    &STOP
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the flag and the signal disposition are
    // process-wide, so a second test racing this one would observe its
    // side effects.
    #[test]
    fn install_is_idempotent_and_a_raised_sigint_trips_the_flag() {
        let a = install();
        let b = install();
        assert!(std::ptr::eq(a, b));
        assert!(std::ptr::eq(a, stop_flag()));
        // Nothing has raised SIGINT in this test process yet.
        assert!(!a.load(Ordering::Relaxed));

        // Raising SIGINT at ourselves must latch the flag instead of
        // killing the process. (The handler resets to SIG_DFL
        // afterwards, so raise exactly once.)
        #[cfg(unix)]
        {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            // SAFETY: `raise(2)` delivers SIGINT to this process; the
            // handler installed above absorbs it into the atomic flag.
            unsafe {
                raise(2);
            }
            assert!(a.load(Ordering::Relaxed));
        }
    }
}
