//! Offline stand-in for `rand`: a deterministic xoshiro256++ `SmallRng`
//! plus the `Rng`/`SeedableRng` subset this workspace uses
//! (`gen_range` over integer ranges, `gen_bool`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level random source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draw a uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let draw = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// User-facing random methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // Compare against the top 53 bits for an unbiased draw.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the reference implementation does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2..=8usize);
            assert!((2..=8).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "{hits}");
    }
}
