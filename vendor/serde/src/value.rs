//! The serialization tree.

/// A JSON-shaped value. Integer values keep full `u64`/`i64` precision
/// (they are rendered as digit strings, never through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or generic signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; keys are usually `Value::Str` but structured keys are
    /// allowed in memory (the JSON writer stringifies them).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convert to `u64` if losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Convert to `i64` if losslessly possible.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// Borrow as a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as map entries.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// Look up a string key in map entries (helper for derived code).
pub fn map_get<'a>(entries: &'a [(Value, Value)], key: &str) -> Option<&'a Value> {
    entries
        .iter()
        .find(|(k, _)| k.as_str() == Some(key))
        .map(|(_, v)| v)
}
