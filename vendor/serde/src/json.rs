//! JSON rendering and parsing for [`Value`] trees. The `serde_json`
//! stub is a thin wrapper over this module.

use crate::value::Value;
use crate::Error;

/// Render a value as JSON. `indent = None` gives compact output.
pub fn write(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    emit(v, pretty, 0, &mut out);
    out
}

fn emit(v: &Value, pretty: bool, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest round-trippable representation.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(pretty, depth + 1, out);
                emit(item, pretty, depth + 1, out);
            }
            newline(pretty, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(pretty, depth + 1, out);
                // JSON keys must be strings; structured keys are carried
                // as their compact-JSON encoding.
                match k {
                    Value::Str(s) => emit_string(s, out),
                    other => emit_string(&write(other, false), out),
                }
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                emit(val, pretty, depth + 1, out);
            }
            newline(pretty, depth, out);
            out.push('}');
        }
    }
}

fn newline(pretty: bool, depth: usize, out: &mut String) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump()? == b {
            Ok(())
        } else {
            Err(Error::msg(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal, expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))?
        {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            _ => self.number(),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Seq(items)),
                _ => return Err(Error::msg("expected ',' or ']'")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((Value::Str(key), val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Map(entries)),
                _ => return Err(Error::msg("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| Error::msg("bad \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::msg("bad \\u code point"))?,
                        );
                    }
                    _ => return Err(Error::msg("bad escape")),
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Re-assemble multi-byte UTF-8 (input was a &str, so
                    // this is always valid).
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::msg("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Value::I64(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }
}
