//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-shaped replacement: serialization goes through
//! a JSON-like [`Value`] tree, and `#[derive(Serialize, Deserialize)]`
//! (from the sibling `serde_derive` stub) generates `to_value` /
//! `from_value` implementations. The `serde_json` stub renders and parses
//! the tree. Only the surface this repository uses is implemented.

#![forbid(unsafe_code)]

pub mod json;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::collections::{BTreeMap, VecDeque};

/// Deserialization (or serialization) failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An error carrying a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the serialization tree.
    fn to_value(&self) -> Value;
}

/// A value that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the serialization tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- integers --------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::msg(format!(
                    "expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::msg(format!(
                    "expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .and_then(|s| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| Error::msg("expected single-char string"))
    }
}

// --- strings and references ------------------------------------------

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// --- containers ------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| Error::msg(format!("expected map, got {v:?}")))?;
        let mut out = BTreeMap::new();
        for (k, val) in entries {
            // JSON transports every key as a string; a structured key
            // (tuple, number, ...) arrives as its compact-JSON encoding.
            let key = match K::from_value(k) {
                Ok(key) => key,
                Err(first_err) => match k.as_str().and_then(|s| json::parse(s).ok()) {
                    Some(reparsed) => K::from_value(&reparsed).map_err(|_| first_err)?,
                    None => return Err(first_err),
                },
            };
            out.insert(key, V::from_value(val)?);
        }
        Ok(out)
    }
}

// --- tuples ----------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq()
                    .ok_or_else(|| Error::msg("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected}, got {}", seq.len())));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
