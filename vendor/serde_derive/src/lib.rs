//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented without `syn`/`quote`: the input token stream is walked by
//! hand and the generated impl is assembled as a string. Supported input
//! shapes are exactly the ones this workspace uses:
//!
//! * structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(skip)]`),
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums whose variants are unit (optionally with explicit
//!   discriminants), newtype, tuple, or struct-shaped — externally
//!   tagged, like real serde's default representation.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(e) => {
            return format!("compile_error!({e:?});").parse().unwrap();
        }
    };
    let code = if serialize {
        gen_serialize(&parsed)
    } else {
        gen_deserialize(&parsed)
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes, visibility, and misc qualifiers until the
    // `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("no struct or enum found".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + [...]
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // pub, etc.
            }
            _ => i += 1, // pub(crate) group, etc.
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("derive stub does not support generics on {name}"));
        }
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            None => Shape::UnitStruct,
            _ => return Err(format!("unsupported struct body for {name}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("missing enum body for {name}")),
        }
    };

    Ok(Input { name, shape })
}

/// Consume attributes at `i`, returning (default, skip) serde flags.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let (mut default, mut skip) = (false, false);
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for t in args.stream() {
                            if let TokenTree::Ident(a) = t {
                                match a.to_string().as_str() {
                                    "default" => default = true,
                                    "skip" => skip = true,
                                    _ => {}
                                }
                            }
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    (default, skip)
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (default, skip) = take_attrs(&tokens, &mut i);
        // visibility
        while let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            } else {
                break;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, got {other}")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected ':' after field {name}")),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    Ok(fields)
}

/// Advance past a type, stopping after the trailing top-level ','
/// (or at end of stream). Tracks `<`/`>` nesting.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle += 1;
                    *i += 1;
                }
                '>' => {
                    angle -= 1;
                    *i += 1;
                }
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => *i += 1,
            },
            _ => *i += 1,
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _ = take_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, got {other}")),
            None => break,
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant `= expr`.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                while let Some(t) = tokens.get(i) {
                    if let TokenTree::Punct(p) = t {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        // Skip the separating comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Codegen — Serialize
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __m: ::std::vec::Vec<(::serde::Value, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.skip {
                    continue;
                }
                s.push_str(&format!(
                    "__m.push((::serde::Value::Str(\"{0}\".to_string()), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![\
                             (::serde::Value::Str(\"{vname}\".to_string()), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::serde::Value::Str(\"{0}\".to_string()), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![\
                             (::serde::Value::Str(\"{vname}\".to_string()), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Codegen — Deserialize
// ---------------------------------------------------------------------

fn named_fields_ctor(type_path: &str, fields: &[Field], map_expr: &str, context: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            inits.push_str(&format!(
                "{0}: match ::serde::value::map_get({map_expr}, \"{0}\") {{\n\
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 ::std::option::Option::None => ::std::default::Default::default(),\n}},\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{0}: match ::serde::value::map_get({map_expr}, \"{0}\") {{\n\
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::Error::msg(\"missing field {0} in {context}\")),\n}},\n",
                f.name
            ));
        }
    }
    format!("{type_path} {{\n{inits}}}")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let ctor = named_fields_ctor(name, fields, "__m", name);
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::Error::msg(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::msg(\"expected sequence for {name}\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::msg(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = __v;\n::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__val)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __s = __val.as_seq().ok_or_else(|| \
                             ::serde::Error::msg(\"expected sequence for {name}::{vname}\"))?;\n\
                             if __s.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::msg(\"wrong arity for {name}::{vname}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let ctor = named_fields_ctor(
                            &format!("{name}::{vname}"),
                            fields,
                            "__fm",
                            &format!("{name}::{vname}"),
                        );
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __fm = __val.as_map().ok_or_else(|| \
                             ::serde::Error::msg(\"expected map for {name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({ctor})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown variant {{__other}} of {name}\"))),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __val) = &__entries[0];\n\
                 let __k = __k.as_str().ok_or_else(|| \
                 ::serde::Error::msg(\"expected string variant tag for {name}\"))?;\n\
                 match __k {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown variant {{__other}} of {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"cannot deserialize {name} from {{__other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{\n{body}\n}}\n}}\n"
    )
}
