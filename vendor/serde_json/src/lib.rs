//! Offline stand-in for `serde_json`: a thin JSON front-end over the
//! vendored `serde` value tree.

#![forbid(unsafe_code)]

use serde::{json, Deserialize, Serialize};

/// JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::write(&value.to_value(), false))
}

/// Serialize to pretty-printed JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::write(&value.to_value(), true))
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = json::parse(text)?;
    Ok(T::from_value(&v)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(text)
}
