//! A small fuzzing campaign with the IRIS-based PoC fuzzer (§VII):
//! record a boot, pick `VM_seed_R` targets per exit reason, submit
//! bit-flip fuzzing sequences, and report new coverage + crashes.
//!
//! ```sh
//! cargo run --release --example fuzz_campaign
//! ```

use iris_core::record::Recorder;
use iris_fuzzer::campaign::Campaign;
use iris_fuzzer::failure::FailureKind;
use iris_fuzzer::mutation::SeedArea;
use iris_fuzzer::testcase::TestCase;
use iris_guest::workloads::Workload;
use iris_hv::hypervisor::Hypervisor;
use iris_vtx::exit::ExitReason;

fn main() {
    let mut hv = Hypervisor::new();
    let dom = hv.create_hvm_domain(64 << 20);
    let trace = Recorder::new().record_workload(
        &mut hv,
        dom,
        "OS BOOT",
        Workload::OsBoot.generate(600, 42),
    );
    println!(
        "recorded {} OS BOOT seeds as the fuzzing substrate\n",
        trace.len()
    );

    let mut campaign = Campaign::new();
    for reason in [
        ExitReason::CrAccess,
        ExitReason::IoInstruction,
        ExitReason::Cpuid,
        ExitReason::Rdtsc,
    ] {
        let Some(idx) = trace.seeds.iter().position(|s| s.reason == reason) else {
            continue;
        };
        for area in SeedArea::ALL {
            let tc = TestCase {
                mutants: 200, // paper uses 10_000; scaled for the example
                ..TestCase::new(Workload::OsBoot, idx, reason, area, 7)
            };
            let r = campaign.run_test_case(&trace, &tc);
            println!(
                "{:<12} {:>4}  +{:>4.0}% new coverage   VM crashes {:>5.1}%   HV crashes {:>5.1}%",
                reason.figure_label(),
                area.label(),
                r.coverage_increase_percent,
                r.failures.vm_crash_percent(),
                r.failures.hv_crash_percent()
            );
        }
    }

    println!(
        "\ncorpus: {} crashes observed, {} unique saved ({} VM, {} hypervisor)",
        campaign.corpus.observed(),
        campaign.corpus.unique(),
        campaign.corpus.of_kind(FailureKind::VmCrash).count(),
        campaign
            .corpus
            .of_kind(FailureKind::HypervisorCrash)
            .count()
    );
    if let Some(c) = campaign.corpus.crashes.first() {
        println!(
            "first crash: mutant #{} of {} ({:?}) — console: \"{}\"",
            c.mutant_index,
            c.testcase.cell_label(),
            c.mutation,
            c.console
        );
    }
}
