//! A small fuzzing campaign with the IRIS-based PoC fuzzer (§VII):
//! record a boot, pick `VM_seed_R` targets per exit reason, submit
//! bit-flip fuzzing sequences, and report new coverage + crashes — then
//! rerun the same plan against the fault-injection backend and check
//! which of its planted bugs the campaign detects.
//!
//! ```sh
//! cargo run --release --example fuzz_campaign
//! ```

use iris_fuzzer::campaign::Campaign;
use iris_fuzzer::failure::FailureKind;
use iris_fuzzer::mutation::SeedArea;
use iris_fuzzer::target::{
    record_trace, render_planted_fault_report, FaultyHvTarget, TargetFactory,
};
use iris_fuzzer::testcase::TestCase;
use iris_guest::workloads::Workload;
use iris_vtx::exit::ExitReason;

fn main() {
    let trace = record_trace(Workload::OsBoot, 600, 42);
    println!(
        "recorded {} OS BOOT seeds as the fuzzing substrate\n",
        trace.len()
    );

    // The default campaign drives the stock `iris` backend; any
    // `TargetFactory` slots in the same way.
    let mut campaign = Campaign::new();
    let mut plan = Vec::new();
    for reason in [
        ExitReason::CrAccess,
        ExitReason::IoInstruction,
        ExitReason::Cpuid,
        ExitReason::Rdtsc,
    ] {
        let Some(idx) = trace.seeds.iter().position(|s| s.reason == reason) else {
            continue;
        };
        for area in SeedArea::ALL {
            plan.push(TestCase {
                mutants: 200, // paper uses 10_000; scaled for the example
                ..TestCase::new(Workload::OsBoot, idx, reason, area, 7)
            });
        }
    }
    for tc in &plan {
        let r = campaign.run_test_case(&trace, tc);
        println!(
            "{:<12} {:>4}  +{:>4.0}% new coverage   VM crashes {:>5.1}%   HV crashes {:>5.1}%",
            tc.reason.figure_label(),
            tc.area.label(),
            r.coverage_increase_percent,
            r.failures.vm_crash_percent(),
            r.failures.hv_crash_percent()
        );
    }

    println!(
        "\ncorpus: {} crashes observed, {} unique saved ({} VM, {} hypervisor)",
        campaign.corpus.observed(),
        campaign.corpus.unique(),
        campaign.corpus.of_kind(FailureKind::VmCrash).count(),
        campaign
            .corpus
            .of_kind(FailureKind::HypervisorCrash)
            .count()
    );
    if let Some(c) = campaign.corpus.crashes.first() {
        println!(
            "first crash: mutant #{} of {} ({:?}) — console: \"{}\"",
            c.mutant_index,
            c.testcase.cell_label(),
            c.mutation,
            c.console
        );
    }

    // Same plan, same driver, different backend: the faulty build has a
    // ground truth, so the report can say what the fuzzer *found*.
    let faulty = FaultyHvTarget::default();
    let mut faulty_campaign = Campaign::with_factory(faulty);
    for tc in &plan {
        faulty_campaign.run_test_case(&trace, tc);
    }
    println!(
        "\nsame plan against `{}` ({}):",
        faulty.name(),
        faulty.description()
    );
    print!("{}", render_planted_fault_report(&faulty_campaign.corpus));
}
