//! Submitting *crafted* (hand-built) VM seeds — the paper: "the proposed
//! framework also allows submitting crafted VM seeds, i.e., seeds built
//! manually." Builds a CPUID probe seed and a malformed CR-access seed
//! from scratch, with no recording involved.
//!
//! ```sh
//! cargo run --example crafted_seed
//! ```

use iris_core::replay::ReplayEngine;
use iris_core::seed::VmSeed;
use iris_guest::runner::fast_forward_boot;
use iris_hv::hypervisor::Hypervisor;
use iris_vtx::exit::{CrAccessQual, CrAccessType, ExitReason};
use iris_vtx::fields::VmcsField;
use iris_vtx::gpr::Gpr;

fn main() {
    let mut hv = Hypervisor::new();
    let dummy = hv.create_hvm_domain(64 << 20);
    fast_forward_boot(&mut hv, dummy);
    let mut engine = ReplayEngine::new(&mut hv, dummy);

    // --- Seed 1: a CPUID(0x4000_0000) hypervisor-detection probe. ------
    let mut probe = VmSeed::new(ExitReason::Cpuid);
    probe.push_read(
        VmcsField::VmExitReason,
        u64::from(ExitReason::Cpuid.number()),
    );
    probe.push_read(VmcsField::GuestRip, 0xffff_ffff_8100_2000);
    probe.push_read(VmcsField::VmExitInstructionLen, 2);
    probe.gprs.set(Gpr::Rax, 0x4000_0000);
    let out = engine.submit(&mut hv, &probe);
    let sig = {
        let g = &hv.domains[dummy as usize].vcpus[0].gprs;
        let mut s = Vec::new();
        s.extend(g.get32(Gpr::Rbx).to_le_bytes());
        s.extend(g.get32(Gpr::Rcx).to_le_bytes());
        s.extend(g.get32(Gpr::Rdx).to_le_bytes());
        String::from_utf8_lossy(&s).into_owned()
    };
    println!(
        "crafted CPUID seed: handled as {:?}, hypervisor signature = \"{sig}\", crash = {:?}",
        out.exit.handled_reason, out.exit.crash
    );

    // --- Seed 2: a CR0 write with reserved bits — the handler must
    // inject #GP rather than accept it. -------------------------------
    let mut bad_cr = VmSeed::new(ExitReason::CrAccess);
    bad_cr.push_read(
        VmcsField::VmExitReason,
        u64::from(ExitReason::CrAccess.number()),
    );
    let qual = CrAccessQual {
        cr: 0,
        access: CrAccessType::MovToCr,
        gpr: Some(Gpr::Rax),
        lmsw_source: 0,
    };
    bad_cr.push_read(VmcsField::ExitQualification, qual.encode());
    bad_cr.push_read(VmcsField::GuestRip, 0xffff_ffff_8100_3000);
    bad_cr.push_read(VmcsField::VmExitInstructionLen, 3);
    bad_cr.gprs.set(Gpr::Rax, 0xdead_beef); // reserved CR0 bits galore
    let out = engine.submit(&mut hv, &bad_cr);
    let injected = out.exit.injected;
    println!(
        "crafted bad-CR0 seed: injected vector = {injected:?} (13 = #GP), crash = {:?}",
        out.exit.crash
    );

    // --- Seed 3: wire format round trip. -------------------------------
    let bytes = bad_cr.encode();
    let decoded = VmSeed::decode(&bytes).expect("wire format round-trips");
    println!(
        "seed wire format: {} bytes ({} VMCS pairs + 15 GPRs), decode == original: {}",
        bytes.len(),
        bad_cr.reads.len(),
        decoded == bad_cr
    );
}
