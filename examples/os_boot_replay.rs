//! The §VI-B boot-state scenario end to end: record an OS boot, watch
//! the CR0 mode ladder, then show that post-boot seeds crash a cold
//! dummy VM (`bad RIP for mode 0`) but replay cleanly after the boot
//! seeds re-established the hypervisor state.
//!
//! ```sh
//! cargo run --example os_boot_replay
//! ```

use iris_core::metrics;
use iris_core::record::Recorder;
use iris_core::replay::ReplayEngine;
use iris_guest::runner::fast_forward_boot;
use iris_guest::workloads::Workload;
use iris_hv::hypervisor::Hypervisor;

fn main() {
    // --- Record an OS boot on the test VM. ---------------------------
    let mut hv = Hypervisor::new();
    let test_vm = hv.create_hvm_domain(64 << 20);
    let boot = Recorder::new().record_workload(
        &mut hv,
        test_vm,
        "OS BOOT",
        Workload::OsBoot.generate(2000, 42),
    );
    let ladder = metrics::mode_ladder(&boot);
    let mut seen = Vec::new();
    for m in &ladder {
        if !seen.contains(m) {
            seen.push(*m);
        }
    }
    println!(
        "boot recorded: {} seeds; CR0 mode ladder: {}",
        boot.len(),
        seen.iter()
            .map(|m| m.figure_label())
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // --- Record a post-boot CPU-bound slice. --------------------------
    let mut hv2 = Hypervisor::new();
    let d2 = hv2.create_hvm_domain(64 << 20);
    fast_forward_boot(&mut hv2, d2);
    let cpu = Recorder::new().record_workload(
        &mut hv2,
        d2,
        "CPU-bound",
        Workload::CpuBound.generate(300, 42),
    );

    // --- Cold replay: fresh dummy VM, no boot seeds. -------------------
    let mut cold_hv = Hypervisor::new();
    let cold_dummy = cold_hv.create_hvm_domain(64 << 20);
    let mut cold_engine = ReplayEngine::new(&mut cold_hv, cold_dummy);
    let cold = cold_engine.replay_trace(&mut cold_hv, &cpu);
    let crash_line = cold_hv
        .log
        .grep("bad RIP")
        .last()
        .map(|l| l.message.clone())
        .unwrap_or_default();
    println!(
        "cold dummy VM: {}/{} seeds before crash — Xen log: \"{crash_line}\"",
        cold.metrics.iter().filter(|m| !m.crashed).count(),
        cpu.len()
    );

    // --- Warm replay: boot seeds first, then the same CPU seeds. -------
    let mut warm_hv = Hypervisor::new();
    let warm_dummy = warm_hv.create_hvm_domain(64 << 20);
    let mut warm_engine = ReplayEngine::new(&mut warm_hv, warm_dummy);
    warm_engine.replay_trace(&mut warm_hv, &boot);
    println!(
        "dummy VM mode after boot replay: {:?}",
        warm_hv.domains[warm_dummy as usize].vcpus[0].hvm.mode
    );
    let warm = warm_engine.replay_trace(&mut warm_hv, &cpu);
    println!(
        "after OS_BOOT replay: {}/{} CPU-bound seeds completed",
        warm.metrics.iter().filter(|m| !m.crashed).count(),
        cpu.len()
    );
}
