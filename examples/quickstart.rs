//! Quickstart: record a guest workload, replay it through the dummy VM,
//! and compare accuracy and efficiency — the IRIS core loop in ~40 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use iris_core::manager::{IrisManager, Mode};
use iris_core::metrics;
use iris_core::record::RecordConfig;
use iris_guest::workloads::Workload;

fn main() {
    // A hypervisor with a test VM and a dummy VM (the Fig. 3 deployment).
    let mut mgr = IrisManager::new(64 << 20);
    mgr.boot_test_vm(); // CPU-bound runs post-boot

    // Record 2000 exits of the CPU-bound workload on the test VM.
    let ops = Workload::CpuBound.generate(2000, 42);
    mgr.record("CPU-bound", ops, RecordConfig::default());
    let recorded = mgr.db.get("CPU-bound").expect("just recorded").clone();
    println!(
        "recorded {} seeds, {} unique lines, {:.1} ms of guest wall time",
        recorded.len(),
        recorded.total_coverage().lines(),
        recorded.wall_time_ms()
    );

    // Replay them as-is through the dummy VM (reverting to the snapshot
    // taken at record start, so both sides begin from the same state).
    let t0 = mgr.hv.tsc.now();
    let replayed = mgr.replay("CPU-bound", Mode::ReplayWithMetrics, true);
    let replay_ms = (mgr.hv.tsc.now() - t0) as f64 / 3.6e6;

    // Accuracy: coverage fitting (paper Fig. 6: 92.1% for CPU-bound).
    let fit = metrics::coverage_fitting(&recorded, &replayed);
    println!(
        "coverage fitting: {:.1}% ({} of {} lines reproduced)",
        fit.fitting_percent, fit.common_lines, fit.recorded_lines
    );

    // Efficiency: replay vs real execution (paper Fig. 9b: 85.4% less).
    let eff = metrics::efficiency(&recorded, replay_ms);
    println!(
        "efficiency: real {:.1} ms vs replay {:.1} ms — {:.1}% decrease, {:.1}x speedup, {:.0} seeds/s",
        eff.real_ms, eff.replay_ms, eff.decrease_percent, eff.speedup, eff.replay_exits_per_sec
    );
}
