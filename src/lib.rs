//! # iris-suite — umbrella crate for the IRIS reproduction
//!
//! Re-exports the component crates and hosts the cross-crate integration
//! tests (`tests/`) and the runnable examples (`examples/`). See
//! `README.md` for the tour and `DESIGN.md` for the architecture.

#![forbid(unsafe_code)]

pub use iris_core as core;
pub use iris_fuzzer as fuzzer;
pub use iris_guest as guest;
pub use iris_hv as hv;
pub use iris_vtx as vtx;
